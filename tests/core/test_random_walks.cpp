// Lemma 5.3 and Proposition 5.4: conditioned on a fixed selection sequence
// chi, each walk's occupation distribution equals the corresponding column
// of R(t) (first moments) and the *products* of two walks' costs match the
// products of the diffusion costs (second moments) -- the correlation
// coming solely from the shared (u(t), S(t)).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/diffusion.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/core/random_walks.h"
#include "src/graph/generators.h"
#include "src/support/stats.h"

namespace opindyn {
namespace {

SelectionSequence record_sequence(const Graph& g, double alpha,
                                  std::int64_t k, std::int64_t steps,
                                  std::uint64_t seed) {
  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  NodeModel model(
      g, std::vector<double>(static_cast<std::size_t>(g.node_count()), 0.0),
      params);
  Rng rng(seed);
  SelectionSequence chi;
  chi.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t t = 0; t < steps; ++t) {
    chi.push_back(model.step_recorded(rng));
  }
  return chi;
}

TEST(Lemma53, WalkOccupationMatchesDiffusionColumn) {
  const Graph g = gen::petersen();
  const double alpha = 0.4;
  const std::int64_t k = 2;
  const SelectionSequence chi = record_sequence(g, alpha, k, 40, 7);

  DiffusionProcess diffusion(g, alpha);
  diffusion.apply_sequence(chi);

  constexpr int replicas = 60000;
  const auto n = static_cast<std::size_t>(g.node_count());
  // occupation[u][x] = empirical P(walk u at node x | chi).
  std::vector<std::vector<double>> occupation(n,
                                              std::vector<double>(n, 0.0));
  Rng rng(11);
  for (int r = 0; r < replicas; ++r) {
    CorrelatedWalks walks(g, alpha);
    for (const auto& sel : chi) {
      walks.apply(sel, rng);
    }
    for (std::size_t u = 0; u < n; ++u) {
      occupation[u][static_cast<std::size_t>(walks.position(u))] +=
          1.0 / replicas;
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    const auto column = diffusion.commodity_load(static_cast<NodeId>(u));
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_NEAR(occupation[u][x], column[x], 0.01)
          << "walk " << u << " node " << x;
    }
  }
}

TEST(Lemma53, WalkCostMeanMatchesDiffusionCost) {
  const Graph g = gen::cycle(9);
  const double alpha = 0.5;
  const SelectionSequence chi = record_sequence(g, alpha, 1, 60, 13);
  Rng init_rng(5);
  const auto xi = initial::gaussian(init_rng, 9, 0.0, 2.0);

  DiffusionProcess diffusion(g, alpha);
  diffusion.apply_sequence(chi);
  const auto w = diffusion.costs(xi);

  constexpr int replicas = 60000;
  std::vector<RunningStats> cost_stats(9);
  Rng rng(17);
  for (int r = 0; r < replicas; ++r) {
    CorrelatedWalks walks(g, alpha);
    for (const auto& sel : chi) {
      walks.apply(sel, rng);
    }
    for (std::size_t u = 0; u < 9; ++u) {
      cost_stats[u].add(walks.cost(u, xi));
    }
  }
  for (std::size_t u = 0; u < 9; ++u) {
    EXPECT_NEAR(cost_stats[u].mean(), w[u],
                4.0 * cost_stats[u].mean_ci_halfwidth() + 1e-3);
  }
}

TEST(Prop54, SecondMomentsMatchDiffusionProducts) {
  // E[W~(a) W~(b) | chi] = W(a) W(b) for walks a != b: once chi is fixed
  // the walks are independent, so the product of their (conditional)
  // expectations equals the expectation of the product.
  const Graph g = gen::complete(6);
  const double alpha = 0.3;
  const std::int64_t k = 2;
  const SelectionSequence chi = record_sequence(g, alpha, k, 30, 19);
  Rng init_rng(23);
  const auto xi = initial::gaussian(init_rng, 6, 0.0, 1.0);

  DiffusionProcess diffusion(g, alpha);
  diffusion.apply_sequence(chi);
  const auto w = diffusion.costs(xi);

  constexpr int replicas = 200000;
  RunningStats product_01;
  RunningStats product_25;
  RunningStats product_33;
  Rng rng(29);
  for (int r = 0; r < replicas; ++r) {
    CorrelatedWalks walks(g, alpha);
    for (const auto& sel : chi) {
      walks.apply(sel, rng);
    }
    product_01.add(walks.cost(0, xi) * walks.cost(1, xi));
    product_25.add(walks.cost(2, xi) * walks.cost(5, xi));
    product_33.add(walks.cost(3, xi) * walks.cost(3, xi));
  }
  EXPECT_NEAR(product_01.mean(), w[0] * w[1],
              4.0 * product_01.mean_ci_halfwidth() + 1e-3);
  EXPECT_NEAR(product_25.mean(), w[2] * w[5],
              4.0 * product_25.mean_ci_halfwidth() + 1e-3);
  // Same-walk product: E[W~(3)^2] >= W(3)^2 (Jensen); equality only if
  // the conditional distribution is degenerate, so only check >=.
  EXPECT_GE(product_33.mean(),
            w[3] * w[3] - 4.0 * product_33.mean_ci_halfwidth() - 1e-3);
}

TEST(CorrelatedWalks, WalksOnlyMoveWhenSelected) {
  const Graph g = gen::path(5);
  CorrelatedWalks walks(g, 0.5);
  Rng rng(1);
  // Selection fires at node 2; walks at 0,1,3,4 must not move.
  walks.apply(NodeSelection{2, {1}}, rng);
  EXPECT_EQ(walks.position(0), 0);
  EXPECT_EQ(walks.position(1), 1);
  EXPECT_EQ(walks.position(3), 3);
  EXPECT_EQ(walks.position(4), 4);
  const NodeId p2 = walks.position(2);
  EXPECT_TRUE(p2 == 2 || p2 == 1);
}

TEST(CorrelatedWalks, PairConstructorTracksTwoWalks) {
  const Graph g = gen::cycle(6);
  CorrelatedWalks pair(g, 0.5, {2, 4});
  EXPECT_EQ(pair.walk_count(), 2u);
  EXPECT_EQ(pair.position(0), 2);
  EXPECT_EQ(pair.position(1), 4);
}

TEST(CorrelatedWalks, NoopSelectionMovesNothing) {
  const Graph g = gen::cycle(4);
  CorrelatedWalks walks(g, 0.5);
  Rng rng(2);
  walks.apply(NodeSelection{}, rng);
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_EQ(walks.position(u), static_cast<NodeId>(u));
  }
}

}  // namespace
}  // namespace opindyn
