// Lemma 5.7: the Q-chain's stationary distribution on d-regular graphs
// takes exactly the three closed-form values mu_0 / mu_1 / mu_+ by
// distance class.  Verified three independent ways:
//   (1) the closed form satisfies mu Q = mu on the exactly-built Q matrix,
//   (2) power iteration on Q converges to the same vector,
//   (3) simulating the two correlated walks matches the predicted
//       occupation frequencies.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/node_model.h"
#include "src/core/qchain.h"
#include "src/core/random_walks.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(QChainClosedForm, NormalisationIdentity) {
  // n mu_0 + n d mu_1 + n(n-d-1) mu_+ = 1 (Eq. 56).
  for (const std::int64_t n : {6, 10, 20, 51}) {
    for (const std::int64_t d : {2, 3, 4, 5}) {
      if (d >= n) {
        continue;
      }
      for (const std::int64_t k : {std::int64_t{1}, d / 2 + 1, d}) {
        for (const double alpha : {0.1, 0.5, 0.9}) {
          const auto v = q_stationary_closed_form(n, d, k, alpha);
          const double total =
              static_cast<double>(n) * v.mu0 +
              static_cast<double>(n * d) * v.mu1 +
              static_cast<double>(n * (n - d - 1)) * v.mu_plus;
          EXPECT_NEAR(total, 1.0, 1e-12)
              << "n=" << n << " d=" << d << " k=" << k
              << " alpha=" << alpha;
          EXPECT_GT(v.mu0, 0.0);
          EXPECT_GT(v.mu1, 0.0);
          EXPECT_GT(v.mu_plus, 0.0);
          // mu_1 <= mu_+ would contradict mu1 - mu+ <= 0 used in the
          // Theorem 2.2(2) proof -- check the sign convention.
          EXPECT_LE(v.mu1, v.mu_plus + 1e-15);
          // Walking pairs prefer being together: mu0 > mu_+.
          EXPECT_GT(v.mu0, v.mu_plus);
        }
      }
    }
  }
}

TEST(QChain, TransitionMatrixIsStochasticAndMatchesPaperEntries) {
  // Spot-check the entries of Eqs. (14)-(21) on the cycle C_5 (d = 2,
  // k = 1, alpha = 0.5, pi_x = 1/n = 0.2).
  const Graph g = gen::cycle(5);
  const double alpha = 0.5;
  QChain chain(g, alpha, 1);
  const Matrix& q = chain.transition();
  const double pi = 0.2;
  const double b = 1.0 - alpha;
  const double d = 2.0;

  // Eq. (15): Q((x,x),(u,u)) = (1-a)^2 pi / (k d), u neighbour of x.
  EXPECT_NEAR(q.at(chain.state_index(0, 0), chain.state_index(1, 1)),
              b * b * pi / d, 1e-14);
  // Eq. (16)/(17): Q((x,x),(x,u)) = a(1-a) pi / d.
  EXPECT_NEAR(q.at(chain.state_index(0, 0), chain.state_index(0, 1)),
              alpha * b * pi / d, 1e-14);
  EXPECT_NEAR(q.at(chain.state_index(0, 0), chain.state_index(1, 0)),
              alpha * b * pi / d, 1e-14);
  // Eq. (18): self-loop at (x,x) = a^2 pi + (1 - pi).
  EXPECT_NEAR(q.at(chain.state_index(0, 0), chain.state_index(0, 0)),
              alpha * alpha * pi + (1.0 - pi), 1e-14);
  // Eq. (19): Q((x,y),(x,v)) = (1-a) pi / d for v ~ y.
  EXPECT_NEAR(q.at(chain.state_index(0, 2), chain.state_index(0, 3)),
              b * pi / d, 1e-14);
  // Eq. (21): self-loop at (x,y) = (1 - 2 pi) + 2 pi a.
  EXPECT_NEAR(q.at(chain.state_index(0, 2), chain.state_index(0, 2)),
              (1.0 - 2.0 * pi) + 2.0 * pi * alpha, 1e-14);
}

TEST(QChain, K2DistinctPairTransitionMatchesEq14) {
  // Eq. (14): Q((x,x),(u,v)) = (1-a)^2 pi (k-1)/(k d(d-1)) for u != v
  // both neighbours of x.  Petersen graph: d = 3, take k = 2.
  const Graph g = gen::petersen();
  const double alpha = 0.3;
  QChain chain(g, alpha, 2);
  const double pi = 1.0 / 10.0;
  const double b = 1.0 - alpha;
  const auto row0 = g.neighbors(0);
  const NodeId u = row0[0];
  const NodeId v = row0[1];
  EXPECT_NEAR(
      chain.transition().at(chain.state_index(0, 0), chain.state_index(u, v)),
      b * b * pi * (2.0 - 1.0) / (2.0 * 3.0 * 2.0), 1e-14);
  // Non-reversibility (proof of Lemma 5.7): with k >= 2 a distance-0 pair
  // can split straight to distance 2 (Petersen is triangle-free, so two
  // neighbours of node 0 are non-adjacent), but a distance-2 pair can
  // never coalesce in one step -- only one coordinate moves per step.
  EXPECT_GT(
      chain.transition().at(chain.state_index(0, 0), chain.state_index(u, v)),
      0.0);
  EXPECT_EQ(
      chain.transition().at(chain.state_index(u, v), chain.state_index(0, 0)),
      0.0);
}

struct QChainCase {
  const char* name;
  std::int64_t k;
  double alpha;
};

class QChainStationarySweep : public ::testing::TestWithParam<QChainCase> {
 protected:
  static Graph make_graph(const std::string& name) {
    Rng rng(77);
    if (name == "cycle8") return gen::cycle(8);
    if (name == "complete6") return gen::complete(6);
    if (name == "petersen") return gen::petersen();
    if (name == "hypercube3") return gen::hypercube(3);
    if (name == "torus33") return gen::torus(3, 3);
    if (name == "circulant10") return gen::circulant(10, {1, 2});
    return gen::random_regular(rng, 12, 4);
  }
};

TEST_P(QChainStationarySweep, ClosedFormSatisfiesMuQEqualsMu) {
  const auto p = GetParam();
  const Graph g = make_graph(p.name);
  if (p.k > g.min_degree()) {
    GTEST_SKIP() << "k exceeds degree";
  }
  QChain chain(g, p.alpha, p.k);
  // This is the core assertion of Lemma 5.7.
  EXPECT_LT(chain.closed_form_residual(), 1e-14)
      << p.name << " k=" << p.k << " alpha=" << p.alpha;
}

TEST_P(QChainStationarySweep, PowerIterationAgreesWithClosedForm) {
  const auto p = GetParam();
  const Graph g = make_graph(p.name);
  if (p.k > g.min_degree()) {
    GTEST_SKIP() << "k exceeds degree";
  }
  QChain chain(g, p.alpha, p.k);
  const auto numerical = chain.numerical_stationary(1e-13, 4000000);
  ASSERT_TRUE(numerical.converged);
  const auto closed = chain.closed_form_stationary();
  for (std::size_t s = 0; s < closed.size(); ++s) {
    EXPECT_NEAR(numerical.distribution[s], closed[s], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphKAlpha, QChainStationarySweep,
    ::testing::Values(QChainCase{"cycle8", 1, 0.5},
                      QChainCase{"cycle8", 2, 0.25},
                      QChainCase{"complete6", 1, 0.5},
                      QChainCase{"complete6", 3, 0.7},
                      QChainCase{"complete6", 5, 0.9},
                      QChainCase{"petersen", 1, 0.3},
                      QChainCase{"petersen", 2, 0.5},
                      QChainCase{"petersen", 3, 0.8},
                      QChainCase{"hypercube3", 2, 0.4},
                      QChainCase{"torus33", 4, 0.6},
                      QChainCase{"circulant10", 3, 0.35},
                      QChainCase{"random12_4", 2, 0.55}));

TEST(QChain, SimulatedPairFrequenciesMatchStationary) {
  // Long-run empirical occupation of the two-walk pair state matches mu.
  const Graph g = gen::cycle(6);
  const double alpha = 0.5;
  const std::int64_t k = 1;
  QChain chain(g, alpha, k);
  const auto mu = chain.closed_form_stationary();

  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  NodeModel driver(g, std::vector<double>(6, 0.0), params);
  CorrelatedWalks pair(g, alpha, {0, 3});
  Rng rng(101);
  std::vector<double> freq(36, 0.0);
  constexpr int warmup = 20000;
  constexpr int samples = 2000000;
  for (int t = 0; t < warmup; ++t) {
    pair.apply(driver.step_recorded(rng), rng);
  }
  for (int t = 0; t < samples; ++t) {
    pair.apply(driver.step_recorded(rng), rng);
    freq[chain.state_index(pair.position(0), pair.position(1))] +=
        1.0 / samples;
  }
  for (std::size_t s = 0; s < 36; ++s) {
    EXPECT_NEAR(freq[s], mu[s], 0.004) << "state " << s;
  }
}

TEST(QChain, RejectsInvalidParameters) {
  const Graph g = gen::cycle(6);
  EXPECT_THROW(QChain(g, 0.0, 1), ContractError);
  EXPECT_THROW(QChain(g, 0.5, 3), ContractError);  // k > min degree
  EXPECT_THROW(q_stationary_closed_form(6, 1, 1, 0.5), ContractError);
  EXPECT_THROW(q_stationary_closed_form(6, 2, 3, 0.5), ContractError);
  // Closed form requested for an irregular graph.  QChain borrows the
  // graph, so it must outlive the chain (a temporary here is a
  // use-after-scope).
  const Graph star = gen::star(5);
  QChain star_chain(star, 0.5, 1);
  EXPECT_THROW(star_chain.closed_form_stationary(), ContractError);
}

TEST(QChain, IrregularGraphStillHasStationaryDistribution) {
  // Section 6 open problem: no closed form for irregular graphs, but the
  // chain itself is fine -- power iteration must converge.
  const Graph g = gen::star(5);
  QChain chain(g, 0.5, 1);
  const auto result = chain.numerical_stationary();
  ASSERT_TRUE(result.converged);
  double total = 0.0;
  for (const double x : result.distribution) {
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

}  // namespace
}  // namespace opindyn
