// The step_burst contract for the generalized model family: for every
// ModelKind constructible through make_process, step_burst(n) must
// consume exactly the rng draw sequence of n single step() calls and
// leave bit-identical state -- the same ISSUE-5 contract the node/edge
// kernels are held to in tests/core/test_step_burst.cpp, now asserted
// across voter, gossip, degroot, friedkin_johnsen, weighted_median and
// hegselmann_krause.  Also covers the model-layer validation: the knob
// matrix rejections and the did-you-mean parse diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/process.h"
#include "src/graph/generators.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

// Burst split with a zero-length burst, tiny bursts, and one large
// remainder -- exercises every chunking pattern a harness produces.
void run_in_bursts(AveragingProcess& process, Rng& rng,
                   std::int64_t total) {
  process.step_burst(rng, 0);
  process.step_burst(rng, 1);
  process.step_burst(rng, 7);
  process.step_burst(rng, 100);
  process.step_burst(rng, total - 108);
}

void expect_bit_identical(const AveragingProcess& single,
                          const AveragingProcess& burst) {
  ASSERT_EQ(single.time(), burst.time());
  const std::vector<double>& a = single.state().values();
  const std::vector<double>& b = burst.state().values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    // Bitwise equality, not EXPECT_NEAR: every kind's kernel performs
    // the exact arithmetic of its apply_update.
    ASSERT_EQ(a[u], b[u]) << "value diverged at node " << u;
  }
  EXPECT_EQ(single.state().phi(), burst.state().phi());
  EXPECT_EQ(single.state().phi_plain(), burst.state().phi_plain());
  EXPECT_EQ(single.state().weighted_average(),
            burst.state().weighted_average());
  EXPECT_EQ(single.state().l2_squared(), burst.state().l2_squared());
}

/// Runs the single-step / split-burst pair for one config on one graph
/// and asserts state bit-identity plus rng stream lockstep.
void check_burst_equivalence(const Graph& g, const ModelConfig& config,
                             const std::vector<double>& xi,
                             std::uint64_t seed,
                             std::int64_t total = 600) {
  auto single = make_process(g, config, xi);
  auto burst = make_process(g, config, xi);
  Rng rng_single(seed);
  Rng rng_burst(seed);
  for (std::int64_t i = 0; i < total; ++i) {
    single->step(rng_single);
  }
  run_in_bursts(*burst, rng_burst, total);
  expect_bit_identical(*single, *burst);
  // Same number of raw draws consumed: the streams stay in lockstep
  // after the runs.
  EXPECT_EQ(rng_single(), rng_burst());
}

ModelConfig base_config(ModelKind kind) {
  ModelConfig config;
  config.kind = kind;
  return config;
}

TEST(ModelBurst, VoterMatchesSingleSteps) {
  Rng graph_rng(101);
  const Graph regular = gen::random_regular(graph_rng, 24, 5);
  const Graph irregular = gen::lollipop(8, 8);
  // Distinct starting opinions keep the id bookkeeping busy for the
  // whole run instead of collapsing to consensus immediately.
  std::vector<double> xi(24);
  for (std::size_t u = 0; u < xi.size(); ++u) {
    xi[u] = static_cast<double>(u % 7);
  }
  std::vector<double> xi_irregular(xi.begin(),
                                   xi.begin() + irregular.node_count());
  for (const bool lazy : {false, true}) {
    SCOPED_TRACE("lazy=" + std::to_string(lazy));
    ModelConfig config = base_config(ModelKind::voter);
    config.lazy = lazy;
    check_burst_equivalence(regular, config, xi, 9001);
    check_burst_equivalence(irregular, config, xi_irregular, 9002);
  }
}

TEST(ModelBurst, GossipMatchesSingleSteps) {
  Rng init_rng(7);
  const Graph regular = gen::cycle(20);
  const Graph irregular = gen::lollipop(7, 7);
  const auto xi = initial::gaussian(init_rng, 20, 0.0, 1.0);
  std::vector<double> xi_irregular(xi.begin(),
                                   xi.begin() + irregular.node_count());
  for (const bool lazy : {false, true}) {
    SCOPED_TRACE("lazy=" + std::to_string(lazy));
    ModelConfig config = base_config(ModelKind::gossip);
    config.lazy = lazy;
    check_burst_equivalence(regular, config, xi, 31);
    check_burst_equivalence(irregular, config, xi_irregular, 32);
  }
}

TEST(ModelBurst, DeGrootMatchesSingleSteps) {
  Rng init_rng(11);
  const Graph g = gen::petersen();
  const auto xi = initial::uniform(init_rng, g.node_count(), -2.0, 2.0);
  for (const bool lazy : {false, true}) {
    SCOPED_TRACE("lazy=" + std::to_string(lazy));
    ModelConfig config = base_config(ModelKind::degroot);
    config.lazy = lazy;
    // Deterministic rounds: fewer steps suffice, and the rng must not
    // be touched at all.
    check_burst_equivalence(g, config, xi, 55, 200);
  }
}

TEST(ModelBurst, FriedkinJohnsenMatchesSingleSteps) {
  Rng init_rng(13);
  const Graph g = gen::lollipop(6, 5);
  const auto xi = initial::uniform(init_rng, g.node_count(), 0.0, 1.0);
  ModelConfig config = base_config(ModelKind::friedkin_johnsen);
  config.alpha = 0.7;
  check_burst_equivalence(g, config, xi, 77, 200);
}

TEST(ModelBurst, WeightedMedianMatchesSingleStepsForEveryVariant) {
  Rng graph_rng(103);
  const Graph g = gen::random_regular(graph_rng, 24, 5);
  Rng init_rng(17);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  for (const bool lazy : {false, true}) {
    for (const SamplingMode sampling :
         {SamplingMode::without_replacement,
          SamplingMode::with_replacement}) {
      // k = 1 and 3 hit the specialised kernels, 5 the generic loop.
      for (const std::int64_t k :
           {std::int64_t{1}, std::int64_t{3}, std::int64_t{5}}) {
        SCOPED_TRACE("lazy=" + std::to_string(lazy) + " k=" +
                     std::to_string(k) + " with_replacement=" +
                     std::to_string(sampling ==
                                    SamplingMode::with_replacement));
        ModelConfig config = base_config(ModelKind::weighted_median);
        config.k = k;
        config.lazy = lazy;
        config.sampling = sampling;
        check_burst_equivalence(g, config, xi, 8101);
      }
    }
  }
}

TEST(ModelBurst, WeightedMedianIrregularGraphMatchesSingleSteps) {
  Rng graph_rng(23);
  const Graph g = gen::preferential_attachment(graph_rng, 40, 2);
  ASSERT_FALSE(g.is_regular());
  Rng init_rng(19);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    ModelConfig config = base_config(ModelKind::weighted_median);
    config.k = k;
    check_burst_equivalence(g, config, xi, 607, 601);
  }
}

TEST(ModelBurst, HegselmannKrauseMatchesSingleSteps) {
  Rng graph_rng(29);
  const Graph regular = gen::random_regular(graph_rng, 24, 4);
  const Graph irregular = gen::preferential_attachment(graph_rng, 24, 2);
  Rng init_rng(21);
  const auto xi = initial::uniform(init_rng, 24, -1.0, 1.0);
  for (const bool lazy : {false, true}) {
    for (const double confidence : {0.05, 0.4}) {
      SCOPED_TRACE("lazy=" + std::to_string(lazy) + " confidence=" +
                   std::to_string(confidence));
      ModelConfig config = base_config(ModelKind::hegselmann_krause);
      config.confidence = confidence;
      config.lazy = lazy;
      check_burst_equivalence(regular, config, xi, 4001);
      check_burst_equivalence(irregular, config, xi, 4002);
    }
  }
}

TEST(ModelValidation, RejectsKnobsTheKindDoesNotUse) {
  // Non-default values of unread knobs fail fast with a one-line error
  // instead of being silently ignored.
  {
    ModelConfig config = base_config(ModelKind::edge);
    config.k = 4;
    EXPECT_THROW(validate_model_config(config), std::runtime_error);
  }
  {
    ModelConfig config = base_config(ModelKind::edge);
    config.sampling = SamplingMode::with_replacement;
    EXPECT_THROW(validate_model_config(config), std::runtime_error);
  }
  {
    ModelConfig config = base_config(ModelKind::voter);
    config.alpha = 0.3;
    EXPECT_THROW(validate_model_config(config), std::runtime_error);
  }
  {
    ModelConfig config = base_config(ModelKind::weighted_median);
    config.alpha = 0.3;
    try {
      validate_model_config(config);
      FAIL() << "expected rejection";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("does not use alpha="),
                std::string::npos)
          << error.what();
    }
  }
  {
    ModelConfig config = base_config(ModelKind::gossip);
    config.reorder = true;
    EXPECT_THROW(validate_model_config(config), std::runtime_error);
  }
  // hegselmann_krause requires its confidence bound.
  EXPECT_THROW(
      validate_model_config(base_config(ModelKind::hegselmann_krause)),
      std::runtime_error);
  // The defaults are legal for every other kind.
  for (const ModelKind kind :
       {ModelKind::node, ModelKind::edge, ModelKind::voter,
        ModelKind::gossip, ModelKind::degroot, ModelKind::friedkin_johnsen,
        ModelKind::weighted_median}) {
    EXPECT_NO_THROW(validate_model_config(base_config(kind)));
  }
}

TEST(ModelValidation, ConfigForKindDropsForeignKnobs) {
  ModelConfig config = base_config(ModelKind::node);
  config.alpha = 0.7;
  config.k = 4;
  config.sampling = SamplingMode::with_replacement;
  config.reorder = true;
  const ModelConfig voter = config_for_kind(config, ModelKind::voter);
  EXPECT_EQ(voter.kind, ModelKind::voter);
  EXPECT_NO_THROW(validate_model_config(voter));
  const ModelConfig edge = config_for_kind(config, ModelKind::edge);
  EXPECT_EQ(edge.kind, ModelKind::edge);
  EXPECT_EQ(edge.alpha, 0.7);      // edge reads alpha...
  EXPECT_EQ(edge.k, ModelConfig{}.k);  // ...but not k
  EXPECT_NO_THROW(validate_model_config(edge));
}

TEST(ModelValidation, ParseDiagnosesUnknownKindWithSuggestion) {
  for (const std::string& name : model_kind_names()) {
    EXPECT_EQ(model_kind_name(parse_model_kind(name)), name);
  }
  try {
    parse_model_kind("vooter");
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("did you mean 'voter'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("known:"), std::string::npos) << what;
  }
}

TEST(ModelValidation, EveryKindConstructsThroughMakeProcess) {
  Rng graph_rng(41);
  const Graph g = gen::random_regular(graph_rng, 16, 4);
  Rng init_rng(43);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  for (const ModelKind kind :
       {ModelKind::node, ModelKind::edge, ModelKind::voter,
        ModelKind::gossip, ModelKind::degroot, ModelKind::friedkin_johnsen,
        ModelKind::weighted_median, ModelKind::hegselmann_krause}) {
    ModelConfig config = base_config(kind);
    if (kind == ModelKind::hegselmann_krause) {
      config.confidence = 0.25;
    }
    auto process = make_process(g, config, xi);
    ASSERT_NE(process, nullptr) << model_kind_name(kind);
    Rng rng(47);
    process->step_burst(rng, 32);
    EXPECT_EQ(process->time(), 32) << model_kind_name(kind);
  }
}

}  // namespace
}  // namespace opindyn
