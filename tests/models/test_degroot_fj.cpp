#include <gtest/gtest.h>

#include <cmath>

#include "src/core/degroot.h"
#include "src/core/friedkin_johnsen.h"
#include "src/core/initial_values.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/spectral/solve.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(SolveDense, MatchesHandSolvedSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveDense, PivotsOnZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveDense, DetectsSingularity) {
  Matrix a(2, 2, 1.0);  // rank 1
  EXPECT_THROW(solve_dense(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveDense, ResidualIsSmallOnRandomSystem) {
  Rng rng(3);
  const std::size_t n = 20;
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    b[r] = rng.next_gaussian();
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = rng.next_gaussian() + (r == c ? 5.0 : 0.0);
    }
  }
  const auto x = solve_dense(a, b);
  const auto ax = a.multiply(x);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_NEAR(ax[r], b[r], 1e-10);
  }
}

TEST(DeGroot, PreservesDegreeWeightedAverageEachRound) {
  const Graph g = gen::lollipop(4, 3);
  Rng rng(5);
  DeGrootModel model(g, initial::gaussian(rng, g.node_count(), 1.0, 2.0),
                     /*lazy=*/false);
  const double invariant = model.weighted_average();
  for (int round = 0; round < 50; ++round) {
    model.round();
    EXPECT_NEAR(model.weighted_average(), invariant, 1e-10);
  }
}

TEST(DeGroot, ConvergesToDegreeWeightedAverage) {
  const Graph g = gen::petersen();
  Rng rng(7);
  const auto xi = initial::uniform(rng, 10, -3.0, 3.0);
  const double target = degree_weighted_average(g, xi);
  DeGrootModel model(g, xi, /*lazy=*/false);  // non-bipartite: converges
  for (int round = 0; round < 300; ++round) {
    model.round();
  }
  EXPECT_LT(model.discrepancy(), 1e-9);
  for (const double v : model.values()) {
    EXPECT_NEAR(v, target, 1e-8);
  }
}

TEST(DeGroot, BipartiteNeedsLaziness) {
  // Even cycle: the non-lazy synchronous dynamic oscillates forever on
  // the alternating vector; the lazy variant converges.
  const Graph g = gen::cycle(8);
  const auto xi = initial::alternating(8);
  DeGrootModel oscillating(g, xi, /*lazy=*/false);
  for (int round = 0; round < 100; ++round) {
    oscillating.round();
  }
  EXPECT_NEAR(oscillating.discrepancy(), 2.0, 1e-9);  // still +-1

  DeGrootModel lazy(g, xi, /*lazy=*/true);
  for (int round = 0; round < 400; ++round) {
    lazy.round();
  }
  EXPECT_LT(lazy.discrepancy(), 1e-6);
}

TEST(FriedkinJohnsen, IterationConvergesToDenseSolveEquilibrium) {
  const Graph g = gen::lollipop(5, 3);
  Rng rng(9);
  const auto s = initial::uniform(rng, g.node_count(), 0.0, 1.0);
  FriedkinJohnsen model(g, s, 0.7);
  const auto star = model.equilibrium();
  for (int round = 0; round < 400; ++round) {
    model.round();
  }
  EXPECT_LT(model.distance_to(star), 1e-10);
}

TEST(FriedkinJohnsen, StubbornAgentsPreventConsensus) {
  // Two camps with opposite private opinions never agree.
  const Graph g = gen::complete_bipartite(3, 3);
  std::vector<double> s{1, 1, 1, -1, -1, -1};
  FriedkinJohnsen model(g, s, 0.5);
  const auto star = model.equilibrium();
  double spread = 0.0;
  for (const double z : star) {
    spread = std::max(spread, std::abs(z));
  }
  EXPECT_GT(spread, 0.1);  // persistent disagreement
  // And expressed opinions stay strictly between private extremes.
  for (std::size_t i = 0; i < star.size(); ++i) {
    EXPECT_LT(std::abs(star[i]), 1.0);
    EXPECT_GT(star[i] * s[i], 0.0);  // same sign as own private opinion
  }
}

TEST(FriedkinJohnsen, HighSusceptibilityApproachesDeGrootConsensus) {
  const Graph g = gen::complete(6);
  Rng rng(11);
  const auto s = initial::uniform(rng, 6, 0.0, 10.0);
  FriedkinJohnsen nearly_degroot(g, s, 0.99);
  const auto star = nearly_degroot.equilibrium();
  double lo = star[0];
  double hi = star[0];
  for (const double z : star) {
    lo = std::min(lo, z);
    hi = std::max(hi, z);
  }
  EXPECT_LT(hi - lo, 0.5);  // near-consensus
  FriedkinJohnsen stubborn(g, s, 0.1);
  const auto star2 = stubborn.equilibrium();
  double lo2 = star2[0];
  double hi2 = star2[0];
  for (const double z : star2) {
    lo2 = std::min(lo2, z);
    hi2 = std::max(hi2, z);
  }
  EXPECT_GT(hi2 - lo2, hi - lo);  // stubbornness preserves spread
}

TEST(RandomizedFJ, ConvergesInExpectationToSynchronousEquilibrium) {
  const Graph g = gen::petersen();
  Rng init_rng(13);
  const auto s = initial::uniform(init_rng, 10, -1.0, 1.0);
  FriedkinJohnsen reference(g, s, 0.6);
  const auto star = reference.equilibrium();

  // Average the randomized iterate over many steps after burn-in.
  RandomizedFJ randomized(g, s, 0.6, 2);
  Rng rng(17);
  for (int t = 0; t < 20000; ++t) {
    randomized.step(rng);
  }
  std::vector<double> time_average(10, 0.0);
  constexpr int samples = 200000;
  for (int t = 0; t < samples; ++t) {
    randomized.step(rng);
    for (std::size_t u = 0; u < 10; ++u) {
      time_average[u] += randomized.expressed()[u] / samples;
    }
  }
  for (std::size_t u = 0; u < 10; ++u) {
    EXPECT_NEAR(time_average[u], star[u], 0.05) << "node " << u;
  }
}

TEST(Baselines, ParameterValidation) {
  const Graph g = gen::cycle(5);
  EXPECT_THROW(DeGrootModel(g, std::vector<double>(3, 0.0), false),
               ContractError);
  EXPECT_THROW(FriedkinJohnsen(g, std::vector<double>(5, 0.0), 1.0),
               ContractError);
  EXPECT_THROW(RandomizedFJ(g, std::vector<double>(5, 0.0), 0.5, 3),
               ContractError);
}

}  // namespace
}  // namespace opindyn
