#include <gtest/gtest.h>

#include <cmath>

#include "src/core/gossip_model.h"
#include "src/core/initial_values.h"
#include "src/core/voter_model.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"
#include "src/support/stats.h"

namespace opindyn {
namespace {

TEST(Voter, ReachesConsensusOnSmallGraph) {
  const Graph g = gen::complete(10);
  std::vector<int> opinions(10);
  for (int i = 0; i < 10; ++i) {
    opinions[static_cast<std::size_t>(i)] = i;
  }
  Rng rng(1);
  const VoterRunResult result =
      run_voter_to_consensus(g, opinions, rng, 1000000);
  ASSERT_TRUE(result.reached_consensus);
  EXPECT_GT(result.steps, 0);
  EXPECT_GE(result.winning_opinion, 0);
  EXPECT_LT(result.winning_opinion, 10);
}

TEST(Voter, ConsensusPreservesSomeInitialOpinion) {
  const Graph g = gen::cycle(12);
  std::vector<int> opinions(12, 7);
  opinions[3] = 42;
  Rng rng(2);
  const VoterRunResult result =
      run_voter_to_consensus(g, opinions, rng, 10000000);
  ASSERT_TRUE(result.reached_consensus);
  EXPECT_TRUE(result.winning_opinion == 7 || result.winning_opinion == 42);
}

TEST(Voter, AlreadyUnanimousIsImmediateConsensus) {
  const Graph g = gen::cycle(6);
  VoterModel model(g, std::vector<int>(6, 5));
  EXPECT_TRUE(model.has_consensus());
  EXPECT_EQ(model.distinct_opinions(), 1);
}

TEST(Voter, DistinctOpinionCountIsMonotoneNonIncreasing) {
  const Graph g = gen::petersen();
  std::vector<int> opinions{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  VoterModel model(g, opinions);
  Rng rng(3);
  int previous = model.distinct_opinions();
  for (int i = 0; i < 50000 && !model.has_consensus(); ++i) {
    model.step(rng);
    EXPECT_LE(model.distinct_opinions(), previous);
    previous = model.distinct_opinions();
  }
}

TEST(Voter, WinnerProbabilityOnCompleteGraphIsProportional) {
  // On regular graphs the voter model's winner is each opinion w.p.
  // (its initial count)/n; check 1-vs-9 split lands near 10%.
  const Graph g = gen::complete(10);
  std::vector<int> opinions(10, 0);
  opinions[0] = 1;
  int wins = 0;
  constexpr int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 100);
    const auto result = run_voter_to_consensus(g, opinions, rng, 1000000);
    wins += (result.reached_consensus && result.winning_opinion == 1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.1, 0.03);
}

TEST(Voter, RejectsMismatchedOpinionVector) {
  const Graph g = gen::cycle(4);
  EXPECT_THROW(VoterModel(g, std::vector<int>(3, 0)), ContractError);
}

TEST(Gossip, PreservesAverageExactly) {
  const Graph g = gen::lollipop(5, 4);
  Rng init_rng(4);
  const auto xi = initial::uniform(init_rng, g.node_count(), -3.0, 3.0);
  PairwiseGossip gossip(g, xi);
  const double avg0 = gossip.state().average();
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    gossip.step(rng);
  }
  EXPECT_NEAR(gossip.state().average(), avg0, 1e-10);
}

TEST(Gossip, ConvergesToExactAverageWithZeroVariance) {
  // The "price of simplicity" contrast: coordinated updates make F
  // deterministic = Avg(0), so Var(F) = 0.
  const Graph g = gen::cycle(16);
  Rng init_rng(6);
  auto xi = initial::gaussian(init_rng, 16, 2.0, 1.0);
  double avg0 = 0.0;
  for (const double v : xi) {
    avg0 += v;
  }
  avg0 /= 16.0;

  RunningStats finals;
  for (int r = 0; r < 50; ++r) {
    Rng rng(static_cast<std::uint64_t>(r) + 50);
    const GossipRunResult result =
        run_gossip_to_convergence(g, xi, rng, 1e-18, 10000000);
    ASSERT_TRUE(result.converged);
    EXPECT_NEAR(result.average_drift, 0.0, 1e-9);
    finals.add(result.final_value);
  }
  EXPECT_NEAR(finals.mean(), avg0, 1e-8);
  EXPECT_LT(finals.population_variance(), 1e-16);
}

TEST(Gossip, StepAveragesBothEndpoints) {
  const Graph g = gen::path(2);
  PairwiseGossip gossip(g, {0.0, 10.0});
  Rng rng(7);
  gossip.step(rng);
  EXPECT_DOUBLE_EQ(gossip.state().value(0), 5.0);
  EXPECT_DOUBLE_EQ(gossip.state().value(1), 5.0);
}

}  // namespace
}  // namespace opindyn
