// Concurrency hammering of the serve-mode seams: multi-submitter
// admission accounting on the bounded JobQueue, cancel-while-running on
// a shared CellScheduler (which must stay reusable), forced-drain
// record completeness, and the serve-vs-one-shot byte-identity contract
// at several thread counts.  `ctest -L stress` runs this under TSan in
// the sanitize CI job; every failure here is also a real correctness
// bug in the plain build.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/runner.h"
#include "src/graph/graph_cache.h"
#include "src/service/cancel_token.h"
#include "src/service/job_queue.h"
#include "src/service/server.h"
#include "src/spectral/spectrum_cache.h"
#include "src/support/cell_scheduler.h"
#include "src/support/json.h"

namespace opindyn {
namespace {

TEST(StressService, MultiSubmitterAccountingNeverLosesAJob) {
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 200;
  service::JobQueue queue(32);

  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> bounced{0};
  std::atomic<std::int64_t> popped{0};
  std::set<std::int64_t> seen_ids;
  std::mutex seen_mutex;

  std::thread consumer([&] {
    while (std::optional<service::Job> job = queue.pop()) {
      ++popped;
      const std::lock_guard<std::mutex> lock(seen_mutex);
      EXPECT_TRUE(seen_ids.insert(job->id).second)
          << "job " << job->id << " popped twice";
    }
  });

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        service::Job job;
        job.id = static_cast<std::int64_t>(s) * kPerSubmitter + i;
        job.token = std::make_shared<CancelToken>();
        switch (queue.try_push(std::move(job))) {
          case service::JobQueue::Push::accepted:
            ++accepted;
            break;
          case service::JobQueue::Push::full:
            ++bounced;
            break;
          case service::JobQueue::Push::closed:
            ADD_FAILURE() << "queue closed while submitters run";
            break;
        }
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  queue.close();
  consumer.join();

  // Explicit backpressure: every push got exactly one of the two
  // outcomes, and every accepted job came out exactly once.
  EXPECT_EQ(accepted + bounced, kSubmitters * kPerSubmitter);
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(queue.size(), 0u);
}

engine::ExperimentSpec slow_spec() {
  // Tight eps on the slow-mixing cycle: converges eventually, but slow
  // enough that a cancellation reliably lands mid-run.
  engine::ExperimentSpec spec;
  spec.scenario = "node";
  spec.graph.family = "cycle";
  spec.graph.n = 512;
  spec.replicas = 8;
  spec.convergence.epsilon = 1e-14;
  spec.print_table = false;
  return spec;
}

TEST(StressService, CancelWhileRunningLeavesTheSharedSchedulerReusable) {
  CellScheduler scheduler(4);
  GraphCache graph_cache(CacheLimits{8, 0});
  SpectrumCache spectrum_cache(CacheLimits{8, 0});

  constexpr int kJobs = 4;
  std::vector<CancelToken> tokens(kJobs);
  std::vector<engine::BatchResult> results(kJobs);
  std::vector<std::thread> runners;
  for (int j = 0; j < kJobs; ++j) {
    runners.emplace_back([&, j] {
      engine::RunContext context;
      context.scheduler = &scheduler;
      context.graph_cache = &graph_cache;
      context.spectrum_cache = &spectrum_cache;
      context.cancel = &tokens[j];
      results[j] = engine::run_experiment(slow_spec(), {}, {}, context);
    });
  }
  // Cancel every other job while they fight over the same pool.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int j = 0; j < kJobs; j += 2) {
    tokens[j].cancel("stress cancel");
  }
  for (std::thread& runner : runners) {
    runner.join();
  }
  for (int j = 0; j < kJobs; ++j) {
    if (results[j].interrupted) {
      EXPECT_EQ(results[j].interrupt_reason, "stress cancel");
    } else {
      // Finished before the cancel landed (or was never cancelled).
      EXPECT_EQ(results[j].rows.size(), 1u);
    }
  }
  // An uncancelled job [1] must never be disturbed by its neighbours'
  // cancellation (fault isolation on the shared pool).
  EXPECT_FALSE(results[1].interrupted);

  // The scheduler survives: a fresh batch on it matches a batch on a
  // brand-new scheduler byte for byte.
  engine::ExperimentSpec check = slow_spec();
  check.graph.n = 64;
  check.convergence.epsilon = 1e-10;
  engine::RunContext shared;
  shared.scheduler = &scheduler;
  const engine::BatchResult reused =
      engine::run_experiment(check, {}, {}, shared);
  const engine::BatchResult fresh =
      engine::run_experiment(check, {}, {});
  EXPECT_FALSE(reused.interrupted);
  EXPECT_EQ(reused.rows, fresh.rows);
}

std::vector<json::Value> parse_records(const std::string& text) {
  std::vector<json::Value> records;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    records.push_back(json::parse(line));
  }
  return records;
}

TEST(StressService, ServeBytesAreIdenticalAcrossThreadCounts) {
  // One-shot reference, default per-batch infrastructure.
  const std::string reference_csv =
      ::testing::TempDir() + "stress_serve_ref.csv";
  engine::ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "cycle";
  spec.graph.n = 64;
  spec.replicas = 8;
  spec.sweeps = engine::parse_sweeps("k:1,2");
  spec.csv_path = reference_csv;
  spec.print_table = false;
  engine::run_experiment_with_default_sinks(spec);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string reference = slurp(reference_csv);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t threads : {1u, 4u, 8u}) {
    const std::string csv = ::testing::TempDir() + "stress_serve_t" +
                            std::to_string(threads) + ".csv";
    service::ServeOptions options;
    options.threads = threads;
    options.job_workers = 2;
    service::JobStreamService server(std::move(options));
    std::istringstream in(
        "scenario=node_vs_edge graph=cycle n=64 replicas=8 "
        "sweep=k:1,2 csv=" + csv + "\n");
    std::ostringstream out;
    ASSERT_EQ(server.serve_stream(in, out), 0);
    const auto records = parse_records(out.str());
    EXPECT_EQ(records.back().find("ok")->as_int(), 1)
        << "threads=" << threads << ": " << out.str();
    EXPECT_EQ(slurp(csv), reference) << "threads=" << threads;
  }
}

TEST(StressService, ForcedDrainRecordsEveryJobAndSummarisesLast) {
  service::ServeOptions options;
  options.job_workers = 2;
  options.threads = 2;
  options.queue_depth = 16;
  options.drain_timeout_ms = 100;
  service::JobStreamService server(std::move(options));

  std::string input;
  for (int i = 0; i < 6; ++i) {
    input +=
        "scenario=node graph=cycle n=512 replicas=8 eps=1e-14\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  std::thread session(
      [&] { EXPECT_EQ(server.serve_stream(in, out), 0); });
  // Let admission finish and some jobs start, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server.request_shutdown("stress drain");
  session.join();

  const auto records = parse_records(out.str());
  ASSERT_GE(records.size(), 2u);
  const json::Value& summary = records.back();
  ASSERT_NE(summary.find("event"), nullptr);
  EXPECT_EQ(summary.find("event")->as_string(), "shutdown");
  EXPECT_EQ(summary.find("reason")->as_string(), "stress drain");

  // Every admitted job produced exactly one record, none after the
  // summary, and the counters add up.
  const std::int64_t admitted = summary.find("admitted")->as_int();
  std::set<std::int64_t> jobs;
  for (const json::Value& record : records) {
    const json::Value* job = record.find("job");
    if (job != nullptr) {
      EXPECT_TRUE(jobs.insert(job->as_int()).second)
          << "duplicate record for job " << job->as_int();
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(jobs.size()), admitted);
  EXPECT_EQ(summary.find("ok")->as_int() +
                summary.find("errors")->as_int() +
                summary.find("cancelled")->as_int(),
            admitted);
}

}  // namespace
}  // namespace opindyn
