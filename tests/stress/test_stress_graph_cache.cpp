// Concurrency stress for the GraphCache per-key once-latches (the tsan
// CI job runs this suite under ThreadSanitizer).  The cache's contract:
// concurrent callers of *distinct* keys build in parallel, concurrent
// callers of the *same* key build exactly once, and a throwing build
// leaves the latch retryable.  These tests hammer all three seams with
// real threads synchronised only through the cache itself.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph_cache.h"

namespace opindyn {
namespace {

/// Spin-barrier start so every thread hits the cache at once instead of
/// running to completion before the next thread even spawns.
class StartGate {
 public:
  void arrive_and_wait(int expected) {
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    while (arrived_.load(std::memory_order_acquire) < expected) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<int> arrived_{0};
};

TEST(StressGraphCache, OverlappingDistinctKeysBuildOnceEach) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 6;
  GraphCache cache;
  std::atomic<int> builds{0};
  StartGate gate;

  std::vector<std::shared_ptr<const Graph>> seen(
      static_cast<std::size_t>(kThreads) * kKeys);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait(kThreads);
      // Rotate the key order per thread so every key sees concurrent
      // first requests from several threads.
      for (int i = 0; i < kKeys; ++i) {
        const int k = (t + i) % kKeys;
        const NodeId n = static_cast<NodeId>(16 + 4 * k);
        auto graph = cache.get("cycle/" + std::to_string(k), [&, n] {
          builds.fetch_add(1, std::memory_order_relaxed);
          return gen::cycle(n);
        });
        seen[static_cast<std::size_t>(t) * kKeys +
             static_cast<std::size_t>(k)] = std::move(graph);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Each key built exactly once, and every thread observed the same
  // shared immutable graph per key.
  EXPECT_EQ(builds.load(), kKeys);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::int64_t>(kThreads) * kKeys);
  for (int k = 0; k < kKeys; ++k) {
    const Graph* first = seen[static_cast<std::size_t>(k)].get();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->node_count(), static_cast<NodeId>(16 + 4 * k));
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t) * kKeys +
                     static_cast<std::size_t>(k)]
                    .get(),
                first)
          << "thread " << t << " got a different instance for key " << k;
    }
  }
}

TEST(StressGraphCache, SameKeyHammeredBuildsExactlyOnce) {
  constexpr int kThreads = 12;
  constexpr int kRounds = 50;
  GraphCache cache;
  std::atomic<int> builds{0};
  StartGate gate;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.arrive_and_wait(kThreads);
      for (int i = 0; i < kRounds; ++i) {
        auto graph = cache.get("the-one-key", [&] {
          builds.fetch_add(1, std::memory_order_relaxed);
          return gen::complete(24);
        });
        // Read through the shared graph on every round: if the latch
        // ever published an unbuilt graph, TSan (and the expectation)
        // would catch the unsynchronised access.
        ASSERT_EQ(graph->node_count(), 24);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(),
            static_cast<std::int64_t>(kThreads) * kRounds - 1);
}

TEST(StressGraphCache, ThrowingBuildPropagatesAndStaysRetryable) {
#if defined(__SANITIZE_THREAD__)
  // TSan's pthread_once interceptor does not implement glibc's
  // exception-unwind re-arm, so a throwing std::call_once callable
  // deadlocks every waiter under -fsanitize=thread (reproducible with a
  // 20-line standalone program on g++ 12 -- no cache involved).  The
  // retry contract is still exercised on every non-TSan run of this
  // suite; under TSan only the exceptional path is skipped.
  GTEST_SKIP() << "throwing std::call_once deadlocks under TSan "
                  "(sanitizer interceptor limitation, not a cache bug)";
#endif
  constexpr int kThreads = 8;
  constexpr int kFailures = 3;  // first kFailures build attempts throw
  GraphCache cache;
  std::atomic<int> attempts{0};
  std::atomic<int> caught{0};
  StartGate gate;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      gate.arrive_and_wait(kThreads);
      // Retry until the build finally succeeds; every failed attempt
      // must surface as the build's exception, never as a torn graph.
      for (;;) {
        try {
          auto graph = cache.get("flaky", [&] {
            if (attempts.fetch_add(1, std::memory_order_relaxed) <
                kFailures) {
              throw std::runtime_error("transient build failure");
            }
            return gen::torus(6, 6);
          });
          EXPECT_EQ(graph->node_count(), 36);
          return;
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "transient build failure");
          caught.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // The build ran at least kFailures + 1 times (the failures plus the
  // one success) and at least the failing attempts' callers saw the
  // exception; afterwards the cache serves the built graph.
  EXPECT_GE(attempts.load(), kFailures + 1);
  EXPECT_GE(caught.load(), kFailures);
  std::atomic<int> rebuilds{0};
  auto graph = cache.get("flaky", [&] {
    rebuilds.fetch_add(1, std::memory_order_relaxed);
    return gen::torus(6, 6);
  });
  EXPECT_EQ(rebuilds.load(), 0) << "a successful build must be cached";
  EXPECT_EQ(graph->node_count(), 36);
}

}  // namespace
}  // namespace opindyn
