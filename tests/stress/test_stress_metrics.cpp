// Concurrency stress for the MetricsRegistry's per-worker buffers (run
// under ThreadSanitizer by the tsan CI job).  The documented contract:
// each thread records into its own lock-free buffer while buffer
// *creation*, main-thread timings/gauges and now_us() run concurrently
// under the registry lock; fold() merges only after the instrumented
// work has drained (the runner folds after the scheduler drained), and
// its counter section is exact and thread-count-independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/support/cell_scheduler.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace {

TEST(StressMetrics, WorkersRecordWhileBuffersSpawnAndTimingsAccumulate) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  MetricsRegistry registry;

  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1, std::memory_order_acq_rel);
      while (started.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      // Counts through the thread-local scope machinery (the library
      // path), tagged with a per-thread label, plus raw spans -- all
      // racing the other workers' first buffer() lookups.
      MetricsScope scope(&registry, "worker/" + std::to_string(t % 2));
      for (int i = 0; i < kIterations; ++i) {
        metrics::count("stress.iterations", 1);
        if (i % 256 == 0) {
          ScopedSpan span(&registry, "chunk", "stress");
          metrics::count("stress.chunks", 1);
        }
      }
    });
  }
  // The main thread hammers the lock-guarded registry surface while the
  // workers record: wall timers, gauges and epoch reads.
  for (int i = 0; i < 500; ++i) {
    registry.add_timing("main.tick", 0.001);
    registry.set_gauge("main.latest", i);
    (void)registry.now_us();
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Fold after the drain: counter totals are exact, split across the
  // two labels, and independent of how threads interleaved.
  const FoldedMetrics folded = registry.fold();
  EXPECT_EQ(folded.counters.at("stress.iterations"),
            static_cast<std::int64_t>(kThreads) * kIterations);
  EXPECT_EQ(folded.counters.at("stress.chunks"),
            static_cast<std::int64_t>(kThreads) * (kIterations / 256 + 1));
  std::int64_t labeled_total = 0;
  for (const auto& [label, counters] : folded.labeled) {
    labeled_total += counters.at("stress.iterations");
  }
  EXPECT_EQ(labeled_total, static_cast<std::int64_t>(kThreads) * kIterations);
  EXPECT_EQ(folded.gauges.at("main.latest"), 499);
  // One buffer per recording thread (the main thread only used the
  // lock-guarded timing/gauge surface, which owns no buffer).
  EXPECT_EQ(folded.workers.size(), static_cast<std::size_t>(kThreads));
}

TEST(StressMetrics, SchedulerCountersAreExactAtAnyThreadCount) {
  // The end-to-end seam the run report depends on: per-worker buffers
  // filled by concurrent replica units, folded after the batches
  // drained.  The deterministic counter section must match the
  // single-threaded run exactly.
  constexpr int kBatches = 12;
  constexpr std::int64_t kReplicas = 20;
  const auto run_with_threads = [](std::size_t threads) {
    MetricsRegistry registry;
    CellScheduler scheduler(threads);
    scheduler.set_metrics(&registry);
    std::vector<std::shared_ptr<ReplicaBatch>> batches;
    for (int b = 0; b < kBatches; ++b) {
      scheduler.set_submit_label("cell/" + std::to_string(b));
      batches.push_back(scheduler.submit(
          kReplicas, 42 + b, 1,
          [](std::int64_t, Rng& rng, std::span<double> out, RowEmitter&) {
            metrics::count("stress.units", 1);
            out[0] = rng.next_double();
          }));
    }
    for (auto& batch : batches) {
      batch->wait();
    }
    return registry.fold();
  };

  const FoldedMetrics serial = run_with_threads(1);
  const FoldedMetrics parallel = run_with_threads(8);
  EXPECT_EQ(serial.counters.at("stress.units"),
            static_cast<std::int64_t>(kBatches) * kReplicas);
  // The whole deterministic section agrees, not just one counter.
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.labeled, parallel.labeled);
  EXPECT_EQ(parallel.labeled.at("cell/3").at("stress.units"), kReplicas);
}

}  // namespace
}  // namespace opindyn
