// Concurrency stress for the SpectrumCache and the per-kind once-latches
// inside GraphSpectra (run under ThreadSanitizer by the tsan CI job).
// Contract: one record per key however many threads race get(), and one
// eigensolve per (graph, spectrum kind) however many threads race the
// accessors -- with both kinds solving concurrently on distinct latches.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/spectral/spectrum_cache.h"

namespace opindyn {
namespace {

TEST(StressSpectrumCache, OverlappingDistinctKeysSolveOncePerKind) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  SpectrumCache cache;
  std::vector<std::shared_ptr<const Graph>> graphs;
  graphs.reserve(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    graphs.push_back(std::make_shared<const Graph>(
        gen::cycle(static_cast<NodeId>(12 + 4 * k))));
  }

  std::atomic<int> started{0};
  std::vector<std::vector<double>> walk_lambda2(
      kThreads, std::vector<double>(kKeys, 0.0));
  std::vector<std::vector<double>> lap_lambda2(
      kThreads, std::vector<double>(kKeys, 0.0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1, std::memory_order_acq_rel);
      while (started.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kKeys; ++i) {
        const int k = (t + i) % kKeys;
        const std::string key = "cycle/" + std::to_string(k);
        auto record = cache.get(key, graphs[static_cast<std::size_t>(k)]);
        // Half the threads ask walk-first, half laplacian-first, so the
        // two per-kind latches of one record are raced from both sides.
        if (t % 2 == 0) {
          walk_lambda2[static_cast<std::size_t>(t)]
                      [static_cast<std::size_t>(k)] =
                          record->walk().lambda2;
          lap_lambda2[static_cast<std::size_t>(t)]
                     [static_cast<std::size_t>(k)] =
                         record->laplacian().lambda2;
        } else {
          lap_lambda2[static_cast<std::size_t>(t)]
                     [static_cast<std::size_t>(k)] =
                         record->laplacian().lambda2;
          walk_lambda2[static_cast<std::size_t>(t)]
                      [static_cast<std::size_t>(k)] =
                          record->walk().lambda2;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // One record per key, one eigensolve per (key, kind) -- the expensive
  // work never duplicates under contention.
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(cache.eigensolves(), static_cast<std::int64_t>(kKeys) * 2);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::int64_t>(kThreads) * kKeys);

  // Every thread read the same memoised values as a fresh
  // single-threaded solve of the same graph.
  for (int k = 0; k < kKeys; ++k) {
    GraphSpectra reference(graphs[static_cast<std::size_t>(k)]);
    const double walk_ref = reference.walk().lambda2;
    const double lap_ref = reference.laplacian().lambda2;
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(walk_lambda2[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(k)],
                walk_ref);
      EXPECT_EQ(lap_lambda2[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(k)],
                lap_ref);
    }
  }
}

TEST(StressSpectrumCache, SameRecordAccessorsHammeredSolveOnce) {
  constexpr int kThreads = 10;
  constexpr int kRounds = 25;
  SpectrumCache cache;
  auto graph = std::make_shared<const Graph>(gen::complete(16));

  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      started.fetch_add(1, std::memory_order_acq_rel);
      while (started.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kRounds; ++i) {
        auto record = cache.get("complete/16", graph);
        const double walk = record->walk().lambda2;
        const double lap = record->laplacian().lambda2;
        ASSERT_TRUE(std::isfinite(walk));
        ASSERT_TRUE(std::isfinite(lap));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.eigensolves(), 2);
  EXPECT_EQ(cache.spectrum_hits(),
            static_cast<std::int64_t>(kThreads) * kRounds * 2 - 2);
}

}  // namespace
}  // namespace opindyn
