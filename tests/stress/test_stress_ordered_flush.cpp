// Concurrency stress for OrderedFlush (run under ThreadSanitizer by the
// tsan CI job).  Contract: cell_done may be called from any thread in
// any completion order, downstream sinks observe rows in strict cell
// order with no synchronisation of their own, and the progress counters
// stay readable while cells land.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/sinks.h"

namespace opindyn {
namespace engine {
namespace {

std::vector<std::vector<std::string>> rows_for_cell(std::size_t cell,
                                                    std::size_t rows) {
  std::vector<std::vector<std::string>> block;
  block.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    block.push_back({std::to_string(cell), std::to_string(r)});
  }
  return block;
}

TEST(StressOrderedFlush, OutOfOrderCompletionFromManyThreads) {
  constexpr std::size_t kCells = 96;
  constexpr int kThreads = 8;
  constexpr std::size_t kRowsPerCell = 5;

  MemorySink memory;
  OrderedFlush flush({&memory}, kCells);
  flush.begin({"cell", "row"});

  // Thread t completes the cells congruent to t mod kThreads, walking
  // them in DESCENDING order, so the flush's "maximal ready prefix"
  // logic sees late low cells unblocking long tails of high ones.
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1, std::memory_order_acq_rel);
      while (started.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      for (std::size_t cell = kCells - 1 - static_cast<std::size_t>(t);;
           cell -= kThreads) {
        flush.cell_done(cell, rows_for_cell(cell, kRowsPerCell));
        // The counters must be safely readable mid-storm.
        ASSERT_LE(flush.flushed_cells(), kCells);
        if (cell < kThreads) {
          break;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  flush.finish();

  EXPECT_EQ(flush.flushed_cells(), kCells);
  EXPECT_EQ(flush.flushed_rows(),
            static_cast<std::int64_t>(kCells) * kRowsPerCell);

  // The sink observed every row in strict (cell, row) order even though
  // completion order was adversarial.
  ASSERT_EQ(memory.rows().size(), kCells * kRowsPerCell);
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    for (std::size_t r = 0; r < kRowsPerCell; ++r) {
      const auto& row = memory.rows()[cell * kRowsPerCell + r];
      EXPECT_EQ(row[0], std::to_string(cell));
      EXPECT_EQ(row[1], std::to_string(r));
    }
  }
}

TEST(StressOrderedFlush, EmptyAndFullCellsInterleaveAcrossThreads) {
  // Odd cells stream rows, even cells complete empty -- the common
  // aggregate-only sweep shape, completed from racing threads.
  constexpr std::size_t kCells = 64;
  constexpr int kThreads = 4;
  MemorySink memory;
  OrderedFlush flush({&memory}, kCells);
  flush.begin({"cell"});

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t cell = next.fetch_add(1, std::memory_order_relaxed);
        if (cell >= kCells) {
          return;
        }
        if (cell % 2 == 1) {
          flush.cell_done(cell, {{std::to_string(cell)}});
        } else {
          flush.cell_done(cell, {});
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  flush.finish();

  ASSERT_EQ(memory.rows().size(), kCells / 2);
  for (std::size_t i = 0; i < memory.rows().size(); ++i) {
    EXPECT_EQ(memory.rows()[i][0], std::to_string(2 * i + 1));
  }
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
