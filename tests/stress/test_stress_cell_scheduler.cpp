// Concurrency stress for the CellScheduler / ReplicaBatch seam (run
// under ThreadSanitizer by the tsan CI job).  The contract under load:
// many batches in flight at once on one shared pool, folds in batch
// order on the caller's thread while later batches are still running,
// results bit-identical to a single-threaded scheduler, batches safely
// outliving their scheduler, and unit exceptions surfacing exactly once
// per accessor instead of tearing the fold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/cell_scheduler.h"

namespace opindyn {
namespace {

/// A unit body with enough arithmetic per replica that batches genuinely
/// overlap on the pool.  Streams one row per replica so the row channel
/// is exercised too.
ReplicaBatch::Body worky_body(std::int64_t spin) {
  return [spin](std::int64_t r, Rng& rng, std::span<double> out,
                RowEmitter& rows) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < spin; ++i) {
      acc += rng.next_double();
    }
    out[0] = acc;
    // Always draw the second value so the rng stream is identical at
    // every metric count, but only store it when the batch actually has
    // a second metric slot (the span is exactly metric_count wide --
    // TSan caught an out[1] heap overflow here under metrics=1).
    const double tail = static_cast<double>(rng.next_below(1000));
    if (out.size() > 1) {
      out[1] = tail;
    }
    rows.emit({std::to_string(r), std::to_string(tail)});
  };
}

TEST(StressCellScheduler, BurstyBatchesFoldIdenticallyToSingleThread) {
  constexpr int kBatches = 32;
  constexpr std::int64_t kReplicas = 16;
  constexpr std::size_t kMetrics = 2;

  // Reference: everything inline on one thread.
  std::vector<std::vector<double>> expected_means(kBatches);
  {
    CellScheduler reference(1);
    for (int b = 0; b < kBatches; ++b) {
      auto batch = reference.submit(kReplicas, 1000 + b, kMetrics,
                                    worky_body(200 + b));
      std::vector<double> means;
      for (const RunningStats& stats : batch->stats()) {
        means.push_back(stats.mean());
      }
      expected_means[static_cast<std::size_t>(b)] = std::move(means);
    }
  }

  // Stressed: all batches submitted up front, folds in batch order while
  // later batches still run on 8 workers.
  CellScheduler scheduler(8);
  std::vector<std::shared_ptr<ReplicaBatch>> batches;
  batches.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    batches.push_back(scheduler.submit(kReplicas, 1000 + b, kMetrics,
                                       worky_body(200 + b)));
  }
  for (int b = 0; b < kBatches; ++b) {
    auto& batch = batches[static_cast<std::size_t>(b)];
    const std::vector<RunningStats>& stats = batch->stats();
    ASSERT_EQ(stats.size(), kMetrics);
    for (std::size_t m = 0; m < kMetrics; ++m) {
      // Bitwise: the fold runs in replica order on the calling thread,
      // so thread count must not move a single ULP.
      EXPECT_EQ(stats[m].mean(),
                expected_means[static_cast<std::size_t>(b)][m])
          << "batch " << b << " metric " << m;
    }
    // The streamed rows arrive in (replica, emission) order.
    const std::vector<StreamedRow> rows = batch->take_streamed_rows();
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(kReplicas));
    for (std::int64_t r = 0; r < kReplicas; ++r) {
      EXPECT_EQ(rows[static_cast<std::size_t>(r)].replica, r);
      EXPECT_EQ(rows[static_cast<std::size_t>(r)].cells[0],
                std::to_string(r));
    }
  }
}

TEST(StressCellScheduler, FoldsInterleaveWithRunningBatches) {
  // Fold each batch immediately after submitting the next, so every
  // stats() call races the pool still working on later batches.
  constexpr int kBatches = 24;
  CellScheduler scheduler(4);
  std::shared_ptr<ReplicaBatch> previous;
  double checksum = 0.0;
  for (int b = 0; b < kBatches; ++b) {
    auto batch = scheduler.submit(8, 77 + b, 1, worky_body(500));
    if (previous) {
      checksum += previous->stats()[0].mean();
      // A second fold of the same batch is the cached result.
      EXPECT_EQ(previous->stats()[0].mean(), previous->stats()[0].mean());
    }
    previous = std::move(batch);
  }
  checksum += previous->stats()[0].mean();
  EXPECT_TRUE(std::isfinite(checksum));
}

TEST(StressCellScheduler, BatchOutlivesItsScheduler) {
  std::shared_ptr<ReplicaBatch> batch;
  {
    CellScheduler scheduler(4);
    batch = scheduler.submit(32, 9, 1, worky_body(1000));
    // Scheduler destruction drains the pool with units mid-flight.
  }
  ASSERT_TRUE(batch->done());
  EXPECT_EQ(batch->stats()[0].count(), 32);
}

TEST(StressCellScheduler, UnitExceptionSurfacesOnEveryAccessor) {
  CellScheduler scheduler(4);
  auto batch = scheduler.submit(
      16, 5, 1,
      [](std::int64_t r, Rng& rng, std::span<double> out, RowEmitter&) {
        out[0] = rng.next_double();
        if (r == 11) {
          throw std::runtime_error("unit 11 failed");
        }
      });
  EXPECT_THROW(batch->wait(), std::runtime_error);
  // The error is sticky: every later accessor rethrows instead of
  // returning a half-folded result.
  EXPECT_THROW(batch->stats(), std::runtime_error);
  EXPECT_THROW(batch->samples(), std::runtime_error);
}

TEST(StressCellScheduler, ManySmallBatchesKeepReplicaOrderUnderContention) {
  // Tiny batches maximise scheduler overhead relative to work: queue
  // churn, chunk boundaries, and completion notifications all race.
  constexpr int kBatches = 200;
  CellScheduler scheduler(8);
  std::vector<std::shared_ptr<ReplicaBatch>> batches;
  batches.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    batches.push_back(scheduler.submit(
        3, b, 1,
        [](std::int64_t r, Rng&, std::span<double> out, RowEmitter& rows) {
          out[0] = static_cast<double>(r);
          rows.emit({std::to_string(r)});
        }));
  }
  for (auto& batch : batches) {
    const std::vector<StreamedRow> rows = batch->take_streamed_rows();
    ASSERT_EQ(rows.size(), 3u);
    for (std::int64_t r = 0; r < 3; ++r) {
      EXPECT_EQ(rows[static_cast<std::size_t>(r)].cells[0],
                std::to_string(r));
    }
    EXPECT_EQ(batch->sample(2, 0), 2.0);
  }
}

}  // namespace
}  // namespace opindyn
