// The serve-mode service layer: CancelToken/CancelScope semantics, the
// bounded JobQueue, and full serve_stream sessions -- record schema,
// fault isolation, deadlines, the backpressure counters and the
// serve-vs-one-shot byte-identity contract.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/runner.h"
#include "src/engine/sinks.h"
#include "src/service/cancel_token.h"
#include "src/service/job_queue.h"
#include "src/service/server.h"
#include "src/support/json.h"

namespace opindyn {
namespace {

// ---- CancelToken ---------------------------------------------------

TEST(CancelToken, StartsClearAndLatchesTheFirstReason) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), nullptr);
  token.cancel("deadline_ms exceeded");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "deadline_ms exceeded");
  // First cancel wins; a later reason never overwrites it.
  token.cancel("shutdown drain");
  EXPECT_STREQ(token.reason(), "deadline_ms exceeded");
}

TEST(CancelToken, ScopeInstallsAndRestoresTheAmbientToken) {
  EXPECT_EQ(cancel::current(), nullptr);
  EXPECT_FALSE(cancel::requested());
  CancelToken outer;
  {
    const CancelScope scope(&outer);
    EXPECT_EQ(cancel::current(), &outer);
    CancelToken inner;
    {
      const CancelScope nested(&inner);
      EXPECT_EQ(cancel::current(), &inner);
      // A null scope is a no-op install: the enclosing token stays.
      const CancelScope noop(nullptr);
      EXPECT_EQ(cancel::current(), &inner);
    }
    EXPECT_EQ(cancel::current(), &outer);
  }
  EXPECT_EQ(cancel::current(), nullptr);
}

TEST(CancelToken, PollThrowsCancelledErrorWithTheReason) {
  CancelToken token;
  const CancelScope scope(&token);
  EXPECT_NO_THROW(cancel::poll());
  token.cancel("SIGINT");
  EXPECT_TRUE(cancel::requested());
  try {
    cancel::poll();
    FAIL() << "poll() must throw once the ambient token is cancelled";
  } catch (const CancelledError& error) {
    EXPECT_STREQ(error.reason(), "SIGINT");
  }
}

// ---- JobQueue ------------------------------------------------------

service::Job make_job(std::int64_t id) {
  service::Job job;
  job.id = id;
  job.token = std::make_shared<CancelToken>();
  return job;
}

TEST(JobQueue, BoundedFifoWithExplicitFullAndClosedOutcomes) {
  service::JobQueue queue(2);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.try_push(make_job(1)), service::JobQueue::Push::accepted);
  EXPECT_EQ(queue.try_push(make_job(2)), service::JobQueue::Push::accepted);
  EXPECT_EQ(queue.try_push(make_job(3)), service::JobQueue::Push::full);
  EXPECT_EQ(queue.size(), 2u);

  const auto first = queue.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1);  // FIFO

  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(make_job(4)), service::JobQueue::Push::closed);
  // Queued jobs stay poppable after close; then pop reports drained.
  const auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueue, CloseWakesBlockedConsumers) {
  service::JobQueue queue(1);
  std::thread consumer([&queue] {
    EXPECT_FALSE(queue.pop().has_value());
  });
  queue.close();
  consumer.join();
}

// ---- serve sessions ------------------------------------------------

std::vector<json::Value> serve_records(const std::string& input,
                                       service::ServeOptions options) {
  service::JobStreamService server(std::move(options));
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::vector<json::Value> records;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    records.push_back(json::parse(line));
  }
  return records;
}

const json::Value* find_job_record(const std::vector<json::Value>& records,
                                   std::int64_t id) {
  for (const json::Value& record : records) {
    const json::Value* job = record.find("job");
    if (job != nullptr && job->as_int() == id) {
      return &record;
    }
  }
  return nullptr;
}

TEST(ServeSession, EmitsReadyJobRecordsAndShutdownSummary) {
  const std::string csv_path =
      ::testing::TempDir() + "serve_session_ok.csv";
  const std::string input =
      "# comment lines and blanks are ignored\n"
      "\n"
      "scenario=node graph=cycle n=32 replicas=2 csv=" + csv_path + "\n";
  const auto records = serve_records(input, service::ServeOptions{});
  ASSERT_GE(records.size(), 3u);

  const json::Value* ready = records.front().find("event");
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->as_string(), "ready");
  EXPECT_EQ(records.front().find("schema")->as_string(),
            "opindyn-serve-v1");

  const json::Value* job = find_job_record(records, 1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->find("status")->as_string(), "ok");
  EXPECT_GT(job->find("rows")->as_int(), 0);

  const json::Value& summary = records.back();
  EXPECT_EQ(summary.find("event")->as_string(), "shutdown");
  EXPECT_EQ(summary.find("reason")->as_string(), "eof");
  EXPECT_EQ(summary.find("admitted")->as_int(), 1);
  EXPECT_EQ(summary.find("ok")->as_int(), 1);
  EXPECT_EQ(summary.find("errors")->as_int(), 0);
  EXPECT_TRUE(summary.find("drained")->as_bool());
  ASSERT_NE(summary.find("caches"), nullptr);
}

TEST(ServeSession, FaultIsolationMalformedAndThrowingJobs) {
  const std::string csv_path =
      ::testing::TempDir() + "serve_session_isolated.csv";
  const std::string input =
      "this is not a job\n"                       // tokens without '='
      "scenario=no_such_scenario n=16\n"          // throws at run time
      "{\"scenario\":\"node\",\"n\":[1,2]}\n"     // non-scalar JSON value
      "scenario=node graph=cycle n=32 replicas=2 csv=" + csv_path + "\n";
  const auto records = serve_records(input, service::ServeOptions{});

  for (const std::int64_t bad : {1, 2, 3}) {
    const json::Value* record = find_job_record(records, bad);
    ASSERT_NE(record, nullptr) << "job " << bad;
    EXPECT_EQ(record->find("status")->as_string(), "error");
    EXPECT_FALSE(record->find("error")->as_string().empty());
  }
  // The server survived all three failures and ran the good job.
  const json::Value* good = find_job_record(records, 4);
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->find("status")->as_string(), "ok");
  const json::Value& summary = records.back();
  EXPECT_EQ(summary.find("errors")->as_int(), 3);
  EXPECT_EQ(summary.find("ok")->as_int(), 1);
}

TEST(ServeSession, MetricsJsonIsRejectedPerJob) {
  const auto records = serve_records(
      "scenario=node n=16 metrics-json=" + ::testing::TempDir() +
          "nope.json\n",
      service::ServeOptions{});
  const json::Value* record = find_job_record(records, 1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->find("status")->as_string(), "error");
  EXPECT_NE(record->find("error")->as_string().find("serve mode"),
            std::string::npos);
}

TEST(ServeSession, DeadlineExceededJobReportsCancelled) {
  // A job that cannot converge quickly (tight eps on a slow-mixing
  // cycle) with a 1 ms deadline: the monitor cancels it between bursts
  // whether it is still queued or already running.
  const std::string input =
      "{\"scenario\":\"node\",\"graph\":\"cycle\",\"n\":1024,"
      "\"replicas\":8,\"eps\":1e-14,\"deadline_ms\":1}\n";
  const auto records = serve_records(input, service::ServeOptions{});
  const json::Value* record = find_job_record(records, 1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->find("status")->as_string(), "cancelled");
  EXPECT_EQ(record->find("reason")->as_string(), "deadline_ms exceeded");
  EXPECT_EQ(records.back().find("cancelled")->as_int(), 1);
}

TEST(ServeSession, JsonAndSpecGrammarJobsProduceIdenticalBytes) {
  const std::string grammar_csv =
      ::testing::TempDir() + "serve_grammar.csv";
  const std::string json_csv = ::testing::TempDir() + "serve_json.csv";
  const std::string input =
      "scenario=node_vs_edge graph=cycle n=64 replicas=4 sweep=k:1,2 "
      "csv=" + grammar_csv + "\n" +
      "{\"scenario\":\"node_vs_edge\",\"graph\":\"cycle\",\"n\":64,"
      "\"replicas\":4,\"sweep\":\"k:1,2\",\"csv\":\"" + json_csv +
      "\"}\n";
  const auto records = serve_records(input, service::ServeOptions{});
  EXPECT_EQ(records.back().find("ok")->as_int(), 2);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string grammar_bytes = slurp(grammar_csv);
  EXPECT_FALSE(grammar_bytes.empty());
  EXPECT_EQ(grammar_bytes, slurp(json_csv));
}

TEST(ServeSession, ServeOutputMatchesOneShotRunnerBytes) {
  const std::string serve_csv = ::testing::TempDir() + "serve_vs_one.csv";
  const std::string oneshot_csv =
      ::testing::TempDir() + "oneshot_vs_serve.csv";

  engine::ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "cycle";
  spec.graph.n = 64;
  spec.replicas = 4;
  spec.sweeps = engine::parse_sweeps("k:1,2");
  spec.csv_path = oneshot_csv;
  spec.print_table = false;
  engine::run_experiment_with_default_sinks(spec);

  service::ServeOptions options;
  options.threads = 2;  // shared pool; bytes must not depend on it
  const auto records = serve_records(
      "scenario=node_vs_edge graph=cycle n=64 replicas=4 sweep=k:1,2 "
      "csv=" + serve_csv + "\n",
      std::move(options));
  EXPECT_EQ(records.back().find("ok")->as_int(), 1);

  std::ifstream serve_in(serve_csv), oneshot_in(oneshot_csv);
  std::stringstream serve_bytes, oneshot_bytes;
  serve_bytes << serve_in.rdbuf();
  oneshot_bytes << oneshot_in.rdbuf();
  EXPECT_FALSE(serve_bytes.str().empty());
  EXPECT_EQ(serve_bytes.str(), oneshot_bytes.str());
}

TEST(ServeSession, RequestShutdownDrainsAndReportsTheReason) {
  service::ServeOptions options;
  options.drain_timeout_ms = 10000;
  service::JobStreamService server(std::move(options));
  server.request_shutdown("test shutdown");
  std::istringstream in(
      "scenario=node graph=cycle n=32 replicas=2\n");  // never admitted
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::string last;
  std::string line;
  std::istringstream lines(out.str());
  while (std::getline(lines, line)) {
    last = line;
  }
  const json::Value summary = json::parse(last);
  EXPECT_EQ(summary.find("event")->as_string(), "shutdown");
  EXPECT_EQ(summary.find("reason")->as_string(), "test shutdown");
  EXPECT_EQ(summary.find("admitted")->as_int(), 0);
}

}  // namespace
}  // namespace opindyn
