// The metrics layer's contracts: counters fold order-independently
// (determinism across worker placements), labels attribute counts to
// their cell, spans carry stable worker indices, and everything is a
// no-op without an installed scope.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/support/metrics.h"

namespace opindyn {
namespace {

TEST(Metrics, CountWithoutScopeIsANoOp) {
  EXPECT_FALSE(metrics::active());
  metrics::count("engine.steps", 1000);  // must not crash or record
  MetricsRegistry registry;
  const FoldedMetrics folded = registry.fold();
  EXPECT_TRUE(folded.counters.empty());
}

TEST(Metrics, ScopeAttributesCountsGloballyAndToItsLabel) {
  MetricsRegistry registry;
  {
    const MetricsScope scope(&registry, "cell/0");
    EXPECT_TRUE(metrics::active());
    metrics::count("engine.steps", 10);
    metrics::count("engine.steps", 5);
  }
  EXPECT_FALSE(metrics::active());
  const FoldedMetrics folded = registry.fold();
  EXPECT_EQ(folded.counters.at("engine.steps"), 15);
  EXPECT_EQ(folded.labeled.at("cell/0").at("engine.steps"), 15);
}

TEST(Metrics, ScopesNestAndRestoreThePreviousLabel) {
  MetricsRegistry registry;
  {
    const MetricsScope outer(&registry, "cell/0");
    {
      const MetricsScope inner(&registry, "cell/1");
      metrics::count("x", 1);
    }
    metrics::count("x", 1);
  }
  const FoldedMetrics folded = registry.fold();
  EXPECT_EQ(folded.counters.at("x"), 2);
  EXPECT_EQ(folded.labeled.at("cell/0").at("x"), 1);
  EXPECT_EQ(folded.labeled.at("cell/1").at("x"), 1);
}

TEST(Metrics, NullRegistryScopeInstallsNothing) {
  const MetricsScope scope(nullptr, "cell/0");
  EXPECT_FALSE(metrics::active());
  metrics::count("x", 1);  // dropped
}

TEST(Metrics, UnlabeledScopeCountsOnlyGlobally) {
  MetricsRegistry registry;
  {
    const MetricsScope scope(&registry, "");
    metrics::count("x", 3);
  }
  const FoldedMetrics folded = registry.fold();
  EXPECT_EQ(folded.counters.at("x"), 3);
  EXPECT_TRUE(folded.labeled.empty());
}

// The determinism contract: the same per-label increments, distributed
// over different worker threads, fold to identical counter maps.
TEST(Metrics, FoldedCountersAreIndependentOfThreadPlacement) {
  const auto run = [](int threads) {
    MetricsRegistry registry;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&registry, t, threads] {
        // 12 units spread round-robin over the workers.
        for (int unit = t; unit < 12; unit += threads) {
          const MetricsScope scope(&registry,
                                   "cell/" + std::to_string(unit % 3));
          metrics::count("engine.steps", 100 + unit);
          metrics::count("scheduler.units_run", 1);
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    return registry.fold();
  };
  const FoldedMetrics one = run(1);
  const FoldedMetrics four = run(4);
  EXPECT_EQ(one.counters, four.counters);
  EXPECT_EQ(one.labeled, four.labeled);
  EXPECT_EQ(one.counters.at("scheduler.units_run"), 12);
}

TEST(Metrics, ScopedSpanRecordsDurationAndBusyTime) {
  MetricsRegistry registry;
  {
    const ScopedSpan span(&registry, "cell/0", "unit", 7);
  }
  const FoldedMetrics folded = registry.fold();
  ASSERT_EQ(folded.spans.size(), 1u);
  EXPECT_EQ(folded.spans[0].name, "cell/0");
  EXPECT_EQ(folded.spans[0].category, "unit");
  EXPECT_EQ(folded.spans[0].replica, 7);
  ASSERT_EQ(folded.workers.size(), 1u);
  EXPECT_EQ(folded.workers[0].spans, 1);
  EXPECT_EQ(folded.label_busy_us.at("cell/0"),
            folded.spans[0].duration_us);
}

TEST(Metrics, NullScopedSpanRecordsNothing) {
  { const ScopedSpan span(nullptr, "x", "unit"); }
  MetricsRegistry registry;
  EXPECT_TRUE(registry.fold().spans.empty());
}

TEST(Metrics, TimingsAccumulateAndGaugesOverwrite) {
  MetricsRegistry registry;
  registry.add_timing("phase.fold", 1.5);
  registry.add_timing("phase.fold", 2.5);
  registry.set_gauge("scheduler.max_inflight_units", 3);
  registry.set_gauge("scheduler.max_inflight_units", 9);
  const FoldedMetrics folded = registry.fold();
  EXPECT_DOUBLE_EQ(folded.timings_ms.at("phase.fold"), 4.0);
  EXPECT_EQ(folded.gauges.at("scheduler.max_inflight_units"), 9);
}

TEST(Metrics, SpansSortByWorkerThenStart) {
  MetricsRegistry registry;
  registry.buffer().add_span(TraceSpan{"b", "unit", -1, 50, 1, 0});
  registry.buffer().add_span(TraceSpan{"a", "unit", -1, 10, 1, 0});
  std::thread([&registry] {
    registry.buffer().add_span(TraceSpan{"c", "unit", -1, 5, 1, 0});
  }).join();
  const FoldedMetrics folded = registry.fold();
  ASSERT_EQ(folded.spans.size(), 3u);
  EXPECT_EQ(folded.spans[0].name, "a");  // worker 0, earliest first
  EXPECT_EQ(folded.spans[1].name, "b");
  EXPECT_EQ(folded.spans[2].name, "c");  // worker 1 after worker 0
  EXPECT_EQ(folded.spans[2].worker, 1);
}

}  // namespace
}  // namespace opindyn
