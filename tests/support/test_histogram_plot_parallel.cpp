#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/ascii_plot.h"
#include "src/support/assert.h"
#include "src/support/histogram.h"
#include "src/support/parallel.h"
#include "src/support/thread_pool.h"

namespace opindyn {
namespace {

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.add(i + 0.5);
  }
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1);
    EXPECT_DOUBLE_EQ(h.bin_low(b), static_cast<double>(b));
    EXPECT_DOUBLE_EQ(h.bin_high(b), static_cast<double>(b) + 1.0);
  }
}

// The NaN-guard contract (see histogram.h): NaN never reaches the bin
// cast (which is UB), lands in the dedicated nan_count() cell, and
// leaves total(), the bins, and the quantile mass untouched.
// +-infinity is an ordinary out-of-range sample and saturates.
TEST(Histogram, NanIsRoutedPastTheBinsAndInfinitySaturates) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.5);
  h.add(7.5);
  const double median_before = h.quantile(0.5);

  h.add(std::nan(""));
  h.add(-std::nan(""));
  EXPECT_EQ(h.nan_count(), 2);
  EXPECT_EQ(h.total(), 2);  // NaN is outside the positional mass
  EXPECT_EQ(h.underflow(), 0);
  EXPECT_EQ(h.overflow(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), median_before);

  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.total(), 4);

  // The render footer reports the NaN cell so it cannot hide.
  EXPECT_NE(h.render(10).find("nan: 2"), std::string::npos);
}

TEST(Histogram, QuantileApproximatesMedian) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 10000; ++i) {
    h.add((i % 100) / 100.0);
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

// The quantile contract for saturated mass (see histogram.h): ranks are
// taken against the FULL count including under/overflow, quantiles
// inside the saturated mass clamp to the matching range edge, and
// out-of-range samples shift the in-range quantiles -- never "quantiles
// over in-range bins only".
TEST(Histogram, QuantileAccountsForSaturatedUnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 3; ++i) {
    h.add(-5.0);  // underflow mass
  }
  h.add(0.25);  // one in-range sample
  for (int i = 0; i < 3; ++i) {
    h.add(7.0);  // overflow mass
  }
  EXPECT_EQ(h.total(), 7);
  EXPECT_EQ(h.underflow(), 3);
  EXPECT_EQ(h.overflow(), 3);
  // Ranks 0..2 (q < 3/7) fall in the underflow: clamp to lo.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.3), 0.0);
  // Rank 3 (the median) is the in-range sample: its bin midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.25);
  // Ranks 4..6 fall in the overflow: clamp to hi.
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantileShiftsWhenMassSaturates) {
  // 50 in-range samples around 0.05, then 50 overflow samples: the
  // median must move to the overflow edge, not stay at the in-range
  // median as a bins-only computation would report.
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 50; ++i) {
    h.add(0.05);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.05);
  for (int i = 0; i < 50; ++i) {
    h.add(9.0);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.05);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 1.0);  // saturated: clamp to hi
}

TEST(Histogram, QuantileOfEmptyHistogramIsLo) {
  const Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractError);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) {
    h.add(0.5);
  }
  h.add(1.5);
  const std::string render = h.render(20);
  EXPECT_NE(render.find("####"), std::string::npos);
  EXPECT_NE(render.find("10"), std::string::npos);
}

TEST(AsciiPlot, PlotsPointsWithinCanvas) {
  Series s;
  s.label = "data";
  s.marker = 'o';
  s.x = {1.0, 2.0, 3.0};
  s.y = {1.0, 4.0, 9.0};
  PlotOptions options;
  options.title = "squares";
  const std::string plot = ascii_plot({s}, options);
  EXPECT_NE(plot.find("squares"), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("'o' data"), std::string::npos);
}

TEST(AsciiPlot, LogAxesSkipNonPositive) {
  Series s;
  s.x = {0.0, 10.0, 100.0};  // 0 unusable on log axis
  s.y = {1.0, 10.0, 100.0};
  PlotOptions options;
  options.log_x = true;
  options.log_y = true;
  const std::string plot = ascii_plot({s}, options);
  EXPECT_NE(plot.find("(log)"), std::string::npos);
}

TEST(AsciiPlot, EmptyInputDoesNotCrash) {
  const std::string plot = ascii_plot({}, PlotOptions{});
  EXPECT_NE(plot.find("no plottable points"), std::string::npos);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  constexpr std::int64_t count = 10000;
  std::vector<std::atomic<int>> visits(count);
  parallel_for(count, [&](std::int64_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::int64_t i) {
                     if (i == 57) {
                       throw std::runtime_error("boom");
                     }
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ZeroAndSingleThreadWork) {
  parallel_for(0, [](std::int64_t) { FAIL(); });
  std::int64_t sum = 0;
  parallel_for(10, [&](std::int64_t i) { sum += i; }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.wait();
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(DefaultParallelism, IsAtLeastOne) {
  EXPECT_GE(default_parallelism(), 1u);
}

}  // namespace
}  // namespace opindyn
