// The CellScheduler's determinism contract at the unit level: batches
// submitted asynchronously fold bit-identically for every thread count,
// streamed rows keep (replica, emission) order, NaN slots mean "no
// sample", and unit exceptions surface on wait().
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/cell_scheduler.h"

namespace opindyn {
namespace {

TEST(CellScheduler, ConcurrentBatchesFoldIdenticallyToSerialOnes) {
  // Submit several interleaved batches ("cells") before folding any of
  // them -- the parallel scheduler has every unit in flight at once.
  const auto body = [](std::uint64_t salt) {
    return [salt](std::int64_t r, Rng& rng, std::span<double> out,
                  RowEmitter&) {
      double acc = static_cast<double>(salt);
      for (int i = 0; i < 50; ++i) {
        acc += rng.next_double();
      }
      out[0] = acc;
      out[1] = static_cast<double>(r);
    };
  };

  std::vector<std::vector<RunningStats>> folded[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int t = 0; t < 2; ++t) {
    CellScheduler scheduler(thread_counts[t]);
    std::vector<std::shared_ptr<ReplicaBatch>> batches;
    for (std::uint64_t cell = 0; cell < 6; ++cell) {
      batches.push_back(
          scheduler.submit(33, subseed(9, cell), 2, body(cell)));
    }
    for (const auto& batch : batches) {
      folded[t].push_back(batch->stats());
    }
  }
  ASSERT_EQ(folded[0].size(), folded[1].size());
  for (std::size_t cell = 0; cell < folded[0].size(); ++cell) {
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_EQ(folded[0][cell][m].mean(), folded[1][cell][m].mean());
      EXPECT_EQ(folded[0][cell][m].variance(),
                folded[1][cell][m].variance());
      EXPECT_EQ(folded[0][cell][m].count(), 33);
    }
  }
}

TEST(CellScheduler, StreamedRowsKeepReplicaThenEmissionOrder) {
  for (const std::size_t threads : {1u, 4u}) {
    CellScheduler scheduler(threads);
    auto batch = scheduler.submit(
        10, 3, 1,
        [](std::int64_t r, Rng&, std::span<double> out, RowEmitter& rows) {
          out[0] = static_cast<double>(r);
          for (int i = 0; i < 3; ++i) {
            rows.emit({std::to_string(r) + ":" + std::to_string(i)});
          }
        });
    const std::vector<StreamedRow> rows = batch->take_streamed_rows();
    ASSERT_EQ(rows.size(), 30u) << threads;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::int64_t r = static_cast<std::int64_t>(i) / 3;
      EXPECT_EQ(rows[i].replica, r);
      EXPECT_EQ(rows[i].cells[0],
                std::to_string(r) + ":" + std::to_string(i % 3));
    }
    // Consume-on-read: a second take yields nothing.
    EXPECT_TRUE(batch->take_streamed_rows().empty());
  }
}

TEST(CellScheduler, NanSlotsAreSkippedByTheFoldButKeptInSamples) {
  CellScheduler scheduler(4);
  auto batch = scheduler.submit(
      8, 1, 2, [](std::int64_t r, Rng&, std::span<double> out, RowEmitter&) {
        if (r % 2 == 0) {
          out[0] = 1.0;
        }
        out[1] = 2.0;
      });
  EXPECT_EQ(batch->stats()[0].count(), 4);
  EXPECT_EQ(batch->stats()[1].count(), 8);
  EXPECT_TRUE(std::isnan(batch->sample(1, 0)));
  EXPECT_EQ(batch->sample(0, 0), 1.0);
  EXPECT_EQ(batch->samples().size(), 16u);
}

TEST(CellScheduler, UnitExceptionsSurfaceOnWait) {
  for (const std::size_t threads : {1u, 4u}) {
    CellScheduler scheduler(threads);
    auto batch = scheduler.submit(
        16, 1, 1,
        [](std::int64_t r, Rng&, std::span<double>, RowEmitter&) {
          if (r == 11) {
            throw std::runtime_error("unit 11 failed");
          }
        });
    EXPECT_THROW(batch->wait(), std::runtime_error) << threads;
  }
}

TEST(CellScheduler, SynchronousRunMatchesHistoricalReplicaScheduler) {
  // The sync convenience used by standalone benches and tests is just
  // submit + fold; the historical alias still compiles.
  ReplicaScheduler scheduler(3);
  const std::vector<RunningStats> stats = scheduler.run(
      20, 7, 1, [](std::int64_t, Rng& rng, std::span<double> out) {
        out[0] = rng.next_double();
      });
  EXPECT_EQ(stats[0].count(), 20);
  EXPECT_GT(stats[0].mean(), 0.0);
  EXPECT_LT(stats[0].mean(), 1.0);
}

TEST(CellScheduler, SubseedIsStableAndSaltSensitive) {
  EXPECT_EQ(subseed(1, 2), subseed(1, 2));
  EXPECT_NE(subseed(1, 2), subseed(1, 3));
  EXPECT_NE(subseed(1, 2), subseed(2, 2));
}

}  // namespace
}  // namespace opindyn
