// The minimal JSON layer behind the observability outputs: exact
// integer round-trips, insertion-ordered objects (deterministic dumps),
// shortest-round-trip doubles, and parse diagnostics with byte offsets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "src/support/json.h"

namespace opindyn {
namespace json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayExact) {
  // Counters can exceed 2^53; they must not round-trip through double.
  const std::int64_t big = 9007199254740993;  // 2^53 + 1
  EXPECT_EQ(parse("9007199254740993").as_int(), big);
  EXPECT_EQ(Value(big).dump(), "9007199254740993");
}

TEST(Json, AsIntAcceptsExactIntegralDoubles) {
  EXPECT_EQ(parse("3.0").as_int(), 3);
  EXPECT_THROW(parse("3.5").as_int(), std::runtime_error);
}

TEST(Json, KindMismatchThrows) {
  EXPECT_THROW(parse("42").as_string(), std::runtime_error);
  EXPECT_THROW(parse("\"x\"").as_int(), std::runtime_error);
  EXPECT_THROW(parse("[]").as_object(), std::runtime_error);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Value v{Object{}};
  v.set("zebra", 1);
  v.set("apple", 2);
  v.set("mango", 3);
  EXPECT_EQ(v.dump(), "{\"zebra\": 1, \"apple\": 2, \"mango\": 3}");
  // set() replaces in place without reordering.
  v.set("apple", 9);
  EXPECT_EQ(v.dump(), "{\"zebra\": 1, \"apple\": 9, \"mango\": 3}");
}

TEST(Json, FindAndMissingKeys) {
  const Value v = parse(R"({"a": 1, "b": {"c": 2}})");
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.find("b")->find("c")->as_int(), 2);
  // find on a non-object is nullptr, not a throw.
  EXPECT_EQ(parse("[1]").find("a"), nullptr);
}

TEST(Json, RoundTripsThroughDump) {
  const char* text =
      R"({"s":"a\"b\\c\nd","arr":[1,2.5,true,null],"nested":{"k":-3}})";
  const Value parsed = parse(text);
  const Value reparsed = parse(parsed.dump());
  EXPECT_EQ(reparsed.dump(), parsed.dump());
  EXPECT_EQ(reparsed.find("s")->as_string(), "a\"b\\c\nd");
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 12345.6789,
                         std::numeric_limits<double>::denorm_min()}) {
    const double back = parse(Value(v).dump()).as_double();
    EXPECT_EQ(back, v) << Value(v).dump();
  }
}

TEST(Json, NonFiniteDoublesDumpAsNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, PrettyPrintIsStable) {
  Value v{Object{}};
  v.set("a", 1);
  v.set("b", Value{Array{Value(1), Value(2)}});
  EXPECT_EQ(v.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
  Value empty{Object{}};
  EXPECT_EQ(empty.dump(2), "{}");
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // Control characters are escaped on the way out.
  EXPECT_EQ(Value(std::string("a\tb")).dump(), "\"a\\tb\"");
}

TEST(Json, MalformedInputThrowsWithOffset) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", ""}) {
    EXPECT_THROW(parse(bad), std::runtime_error) << bad;
  }
  try {
    parse("[1, 2, oops]");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("at byte"),
              std::string::npos);
  }
}

TEST(Json, ParseFileCitesPath) {
  const std::string path = ::testing::TempDir() + "opindyn_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"x": [1, 2, 3]})";
  }
  const Value v = parse_file(path);
  EXPECT_EQ(v.find("x")->as_array().size(), 3u);
  std::remove(path.c_str());
  try {
    parse_file(path);  // now gone
    FAIL() << "expected a file error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
  }
}

TEST(Json, SetPromotesNullAndPushBackBuildsArrays) {
  Value v;
  v.set("k", "v");
  EXPECT_EQ(v.find("k")->as_string(), "v");
  Value arr;
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.as_array().size(), 2u);
  EXPECT_THROW(parse("3").set("k", 1), std::runtime_error);
}

}  // namespace
}  // namespace json
}  // namespace opindyn
