#include "src/support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/support/rng.h"

namespace opindyn {
namespace {

TEST(RunningStats, MatchesClosedFormOnSmallSet) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.population_variance(), 4.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats full;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.next_gaussian() * 3.0 + 1.0;
    full.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), full.count());
  EXPECT_NEAR(a.mean(), full.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), full.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), full.min());
  EXPECT_DOUBLE_EQ(a.max(), full.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(RunningStats, MergeManyPartitionsAssociative) {
  Rng rng(2);
  std::vector<double> data(3000);
  for (double& x : data) {
    x = rng.next_double(-5.0, 5.0);
  }
  RunningStats whole;
  for (const double x : data) {
    whole.add(x);
  }
  // Merge in 7 uneven chunks.
  RunningStats merged;
  std::size_t start = 0;
  for (const std::size_t len : {100u, 900u, 1u, 499u, 1000u, 250u, 250u}) {
    RunningStats chunk;
    for (std::size_t i = start; i < start + len; ++i) {
      chunk.add(data[i]);
    }
    merged.merge(chunk);
    start += len;
  }
  ASSERT_EQ(start, data.size());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-8);
}

TEST(RunningStats, GaussianCoverageOfMeanCI) {
  // The 95% CI for the mean should cover the true mean ~95% of the time.
  int covered = 0;
  constexpr int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    Rng rng(static_cast<std::uint64_t>(e) + 100);
    RunningStats stats;
    for (int i = 0; i < 400; ++i) {
      stats.add(rng.next_gaussian() * 2.0 + 7.0);
    }
    const double half = stats.mean_ci_halfwidth(1.96);
    if (std::abs(stats.mean() - 7.0) <= half) {
      ++covered;
    }
  }
  EXPECT_GT(covered, experiments * 0.9);
  EXPECT_LE(covered, experiments);
}

TEST(RunningStats, VarianceCIIsPositiveForSpreadData) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(rng.next_gaussian());
  }
  EXPECT_GT(stats.variance_ci_halfwidth(), 0.0);
  EXPECT_LT(stats.variance_ci_halfwidth(), 0.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic Welford stress: large mean, small variance.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  EXPECT_NEAR(stats.mean(), 1e9, 1e-3);
  EXPECT_NEAR(stats.population_variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace opindyn
