#include "src/support/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(SampleWithoutReplacement, ProducesDistinctElementsInRange) {
  Rng rng(1);
  std::vector<std::int32_t> out;
  for (int trial = 0; trial < 200; ++trial) {
    sample_without_replacement(rng, 20, 5, out);
    ASSERT_EQ(out.size(), 5u);
    std::set<std::int32_t> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), 5u);
    for (const auto x : out) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 20);
    }
  }
}

TEST(SampleWithoutReplacement, FullPopulationIsPermutationOfAll) {
  Rng rng(2);
  std::vector<std::int32_t> out;
  sample_without_replacement(rng, 8, 8, out);
  std::set<std::int32_t> distinct(out.begin(), out.end());
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(SampleWithoutReplacement, ZeroSampleIsEmpty) {
  Rng rng(3);
  std::vector<std::int32_t> out{1, 2, 3};
  sample_without_replacement(rng, 5, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SampleWithoutReplacement, RejectsOversizedSample) {
  Rng rng(4);
  std::vector<std::int32_t> out;
  EXPECT_THROW(sample_without_replacement(rng, 3, 4, out), ContractError);
}

TEST(SampleWithoutReplacement, SubsetsAreUniform) {
  // All C(5,2) = 10 subsets of {0..4} should be equally likely.
  Rng rng(5);
  std::vector<std::int32_t> out;
  std::map<std::pair<int, int>, int> counts;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    sample_without_replacement(rng, 5, 2, out);
    auto [lo, hi] = std::minmax(out[0], out[1]);
    ++counts[{lo, hi}];
  }
  ASSERT_EQ(counts.size(), 10u);
  const double expected = draws / 10.0;
  double chi2 = 0.0;
  for (const auto& [subset, c] : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);  // chi2_{9, 0.999}
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(6);
  const auto perm = random_permutation(rng, 100);
  std::set<std::int32_t> distinct(perm.begin(), perm.end());
  EXPECT_EQ(distinct.size(), 100u);
  EXPECT_EQ(*distinct.begin(), 0);
  EXPECT_EQ(*distinct.rbegin(), 99);
}

TEST(RandomPermutation, FirstElementUniform) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  constexpr int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const auto perm = random_permutation(rng, 5);
    ++counts[static_cast<std::size_t>(perm[0])];
  }
  const double expected = draws / 5.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 18.5);  // chi2_{4, 0.999}
}

TEST(ReservoirSample, CorrectSizeAndRange) {
  Rng rng(8);
  const auto sample = reservoir_sample(rng, 1000, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::int64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const auto x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 1000);
  }
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(9);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(4, 0);
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(table.sample(rng))];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, weights[i] / 10.0,
                0.01);
  }
}

TEST(AliasTable, HandlesZeroWeights) {
  Rng rng(10);
  AliasTable table({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.sample(rng), 1);
  }
}

TEST(AliasTable, RejectsAllZeroAndNegative) {
  EXPECT_THROW(AliasTable({0.0, 0.0}), ContractError);
  EXPECT_THROW(AliasTable({1.0, -1.0}), ContractError);
  EXPECT_THROW(AliasTable(std::vector<double>{}), ContractError);
}

}  // namespace
}  // namespace opindyn
