#include "src/support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace opindyn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t bound = 10;
  constexpr int draws = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.next_below(bound)];
  }
  // Chi-squared with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(draws) / bound;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, FillBelowMatchesSequentialNextBelowExactly) {
  // The burst kernels batch their draws through fill_below; the stream
  // contract is EXACT equality with sequential next_below, including
  // the state left behind (checked via the next raw draw).
  for (const std::uint64_t bound :
       {1ULL, 3ULL, 7ULL, 1000ULL, (1ULL << 32) - 5, 1ULL << 40}) {
    Rng batched(99);
    Rng sequential(99);
    std::uint64_t buffer[133];  // odd size: exercises any tail handling
    batched.fill_below(bound, buffer, 133);
    for (int i = 0; i < 133; ++i) {
      EXPECT_EQ(buffer[i], sequential.next_below(bound))
          << "bound=" << bound << " i=" << i;
    }
    EXPECT_EQ(batched(), sequential()) << "bound=" << bound;
  }
}

TEST(Rng, NextDoubleIsInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMomentsMatchUniform) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.next_double();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.005);
  EXPECT_NEAR(sum_sq / draws, 1.0 / 3.0, 0.005);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_4 = 0.0;
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
    sum_4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.02);
  EXPECT_NEAR(sum_4 / draws, 3.0, 0.1);  // kurtosis of N(0,1)
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.next_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a = Rng::fork(99, 0);
  Rng a2 = Rng::fork(99, 0);
  Rng b = Rng::fork(99, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a();
    EXPECT_EQ(va, a2());
    if (va == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(31);
  int heads = 0;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    heads += rng.next_bool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / draws, 0.3, 0.01);
}

TEST(Splitmix64, KnownSequenceAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace opindyn
