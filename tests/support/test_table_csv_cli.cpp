#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/support/assert.h"
#include "src/support/cli.h"
#include "src/support/csv.h"
#include "src/support/table.h"

namespace opindyn {
namespace {

TEST(Table, RendersAlignedMarkdown) {
  Table t({"graph", "n", "value"});
  t.new_row().add("cycle").add(std::int64_t{16}).add(3.14159, 3);
  t.new_row().add("complete_graph").add(std::int64_t{8}).add(2.0, 3);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| graph "), std::string::npos);
  EXPECT_NE(md.find("cycle"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(md.find("|---"), std::string::npos);
  // All rows have the same number of pipes.
  std::istringstream lines(md);
  std::string line;
  int pipes = -1;
  while (std::getline(lines, line)) {
    const auto count = std::count(line.begin(), line.end(), '|');
    if (pipes < 0) {
      pipes = static_cast<int>(count);
    }
    EXPECT_EQ(count, pipes);
  }
}

TEST(Table, FormatsNumbers) {
  Table t({"a", "b", "c"});
  t.new_row().add_sci(12345.678, 2).add_fixed(1.23456, 2).add(7);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("1.23e+04"), std::string::npos);
  EXPECT_NE(md.find("1.23 "), std::string::npos);
}

TEST(Table, RejectsMisuse) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), ContractError);  // no row started
  t.new_row().add("x");
  EXPECT_THROW(t.add("y"), ContractError);  // row already full
  EXPECT_THROW(Table(std::vector<std::string>{}), ContractError);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "opindyn_test.csv";
  {
    CsvWriter writer(path, {"x", "y"});
    writer.write_row(std::vector<std::string>{"1", "2"});
    writer.write_row(std::vector<double>{3.5, 4.25});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "3.5,4.25");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongRowWidth) {
  const std::string path = ::testing::TempDir() + "opindyn_test2.csv";
  CsvWriter writer(path, {"x", "y"});
  EXPECT_THROW(writer.write_row(std::vector<std::string>{"1"}),
               ContractError);
  std::remove(path.c_str());
}

TEST(Csv, UnopenablePathFailsAtConstructionNamingThePath) {
  const std::string path =
      ::testing::TempDir() + "no_such_directory/opindyn_test.csv";
  try {
    CsvWriter writer(path, {"x"});
    FAIL() << "construction must throw for an unopenable path";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << "the error must cite the path: " << error.what();
  }
}

TEST(Csv, RowsBeforeHeaderAreRejected) {
  const std::string path = ::testing::TempDir() + "opindyn_test3.csv";
  CsvWriter writer(path);
  EXPECT_THROW(writer.write_row(std::vector<std::string>{"1"}),
               ContractError);
  writer.write_header({"x"});
  writer.write_row(std::vector<std::string>{"1"});
  EXPECT_THROW(writer.write_header({"x"}), ContractError);
  writer.close();
  writer.close();  // idempotent
  std::remove(path.c_str());
}

TEST(Csv, CloseReportsWriteFailureNamingThePath) {
  // /dev/full opens fine but every flush fails with ENOSPC -- exactly
  // the silent late-write failure the close() check is for.  Skip on
  // systems without it.
  std::ofstream probe("/dev/full");
  if (!probe.is_open()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  probe.close();
  bool reported = false;
  try {
    CsvWriter writer("/dev/full");
    writer.write_header({"x"});
    // Push past the stream buffer so the device error surfaces; the
    // per-row check may fire mid-loop, close() catches it at the
    // latest.
    for (int i = 0; i < 10000; ++i) {
      writer.write_row(std::vector<std::string>{"0123456789"});
    }
    writer.close();
  } catch (const std::runtime_error& error) {
    reported = true;
    EXPECT_NE(std::string(error.what()).find("/dev/full"),
              std::string::npos)
        << error.what();
  }
  EXPECT_TRUE(reported) << "the failed writes were never reported";
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog",      "--n=32",      "--alpha=0.25",
                        "positional", "--flag",     "--name=cycle"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get("n", std::int64_t{0}), 32);
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 0.25);
  EXPECT_TRUE(args.get("flag", false));
  EXPECT_EQ(args.get("name", std::string{}), "cycle");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", std::int64_t{7}), 7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.get("a", false));
  EXPECT_TRUE(args.get("b", false));
  EXPECT_TRUE(args.get("c", false));
  EXPECT_FALSE(args.get("d", true));
}

// Malformed numeric option values throw a catchable std::runtime_error
// naming the option (never an uncaught std::invalid_argument), and
// trailing garbage that std::stod would silently accept is rejected.
TEST(Cli, MalformedNumericValuesThrowWithTheOptionName) {
  const char* argv[] = {"prog",        "--replicas=abc", "--eps=0.1x",
                        "--n=9999999999999999999999999", "--ok=12"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get("ok", std::int64_t{0}), 12);

  try {
    args.get("replicas", std::int64_t{0});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--replicas"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("abc"), std::string::npos);
  }
  try {
    args.get("eps", 0.0);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--eps"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("trailing"),
              std::string::npos);
  }
  // Out-of-range integers are diagnosed, not silently truncated.
  EXPECT_THROW(args.get("n", std::int64_t{0}), std::runtime_error);
  // Trailing garbage on an integer option.
  const char* argv2[] = {"prog", "--seed=12banana"};
  CliArgs args2(2, argv2);
  EXPECT_THROW(args2.get("seed", std::int64_t{0}), std::runtime_error);
}

TEST(Cli, EditDistanceCountsInsertsDeletesAndSubstitutions) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("node", "node"), 0u);
  EXPECT_EQ(edit_distance("node", "nodee"), 1u);   // insert
  EXPECT_EQ(edit_distance("node", "noe"), 1u);     // delete
  EXPECT_EQ(edit_distance("node", "mode"), 1u);    // substitute
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
}

TEST(Cli, ClosestMatchesSuggestsNearNamesOnly) {
  const std::vector<std::string> names = {"node", "edge", "voter",
                                          "node_vs_edge", "gossip"};
  EXPECT_EQ(closest_matches("nodee", names),
            (std::vector<std::string>{"node"}));
  // Ties order by distance first, then alphabetically.
  EXPECT_EQ(closest_matches("ndge", names),
            (std::vector<std::string>{"edge", "node"}));
  EXPECT_TRUE(closest_matches("zzzzzzzz", names).empty());
  EXPECT_EQ(closest_matches("voterr", names, 1).size(), 1u);
}

}  // namespace
}  // namespace opindyn
