#include "src/graph/algorithms.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/isoperimetric.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(dist[static_cast<std::size_t>(u)], u);
  }
  const auto dist2 = bfs_distances(g, 3);
  EXPECT_EQ(dist2[0], 3);
  EXPECT_EQ(dist2[5], 2);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 2);
  EXPECT_EQ(diameter(g), -1);
}

TEST(AllPairs, MatchesDefinitionOnCycle) {
  const Graph g = gen::cycle(6);
  const auto dist = all_pairs_distances(g);
  const auto n = static_cast<std::size_t>(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      const int direct = std::abs(u - v);
      const int wrap = 6 - direct;
      EXPECT_EQ(dist[static_cast<std::size_t>(u) * n +
                     static_cast<std::size_t>(v)],
                std::min(direct, wrap));
    }
  }
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(gen::complete(7)), 1);
  EXPECT_EQ(diameter(gen::cycle(9)), 4);
  EXPECT_EQ(diameter(gen::cycle(10)), 5);
  EXPECT_EQ(diameter(gen::star(12)), 2);
  EXPECT_EQ(diameter(gen::hypercube(5)), 5);
  EXPECT_EQ(diameter(gen::petersen()), 2);
}

TEST(Bipartite, KnownFamilies) {
  EXPECT_TRUE(is_bipartite(gen::path(9)));
  EXPECT_TRUE(is_bipartite(gen::cycle(10)));
  EXPECT_FALSE(is_bipartite(gen::cycle(9)));
  EXPECT_FALSE(is_bipartite(gen::complete(4)));
  EXPECT_TRUE(is_bipartite(gen::complete_bipartite(3, 5)));
  EXPECT_TRUE(is_bipartite(gen::hypercube(3)));
}

TEST(DegreeWeightedAverage, MatchesDefinition) {
  const Graph g = gen::star(4);  // hub degree 3, leaves degree 1; 2m = 6
  const std::vector<double> values{6.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(degree_weighted_average(g, values), 3.0);
  const std::vector<double> uniform(4, 2.5);
  EXPECT_DOUBLE_EQ(degree_weighted_average(g, uniform), 2.5);
}

TEST(Isoperimetric, CompleteGraphExact) {
  // K_n: cut of |S|=s is s(n-s); minimum of s(n-s)/s = n - s at s = n/2.
  const Graph g = gen::complete(8);
  EXPECT_DOUBLE_EQ(isoperimetric_number_exact(g), 4.0);
}

TEST(Isoperimetric, CycleExact) {
  // C_n: best cut takes a contiguous arc: 2 edges cut, |S| = n/2.
  const Graph g = gen::cycle(12);
  EXPECT_DOUBLE_EQ(isoperimetric_number_exact(g), 2.0 / 6.0);
}

TEST(Isoperimetric, StarExact) {
  // Star: best S = all leaves' half without hub: cut |S| leaves each with
  // one edge -> ratio 1.
  const Graph g = gen::star(9);
  EXPECT_DOUBLE_EQ(isoperimetric_number_exact(g), 1.0);
}

TEST(Isoperimetric, PathExact) {
  // P_n: cut the middle edge: 1 edge, n/2 nodes.
  const Graph g = gen::path(10);
  EXPECT_DOUBLE_EQ(isoperimetric_number_exact(g), 1.0 / 5.0);
}

TEST(Isoperimetric, SweepBoundIsUpperBound) {
  Rng rng(3);
  for (const NodeId n : {8, 12, 16}) {
    const Graph g = gen::cycle(n);
    const double exact = isoperimetric_number_exact(g);
    const double upper = isoperimetric_number_upper_bound(g, rng, 50);
    EXPECT_GE(upper + 1e-12, exact);
    // The BFS sweep finds the contiguous-arc optimum on cycles.
    EXPECT_NEAR(upper, exact, 1e-12);
  }
}

TEST(CutSize, MatchesManualCount) {
  const Graph g = gen::cycle(4);  // edges 01 12 23 30
  EXPECT_EQ(cut_size(g, 0b0001), 2);
  EXPECT_EQ(cut_size(g, 0b0011), 2);
  EXPECT_EQ(cut_size(g, 0b0101), 4);
  EXPECT_EQ(cut_size(g, 0b1111), 0);
}

}  // namespace
}  // namespace opindyn
