#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/builder.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

Graph triangle() { return Graph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, BasicCountsAndDegrees) {
  const Graph g = triangle();
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.arc_count(), 6);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 2);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.degree(u), 2);
  }
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g(4, {{3, 0}, {1, 0}, {2, 0}});
  const auto row = g.neighbors(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 2);
  EXPECT_EQ(row[2], 3);
  EXPECT_EQ(g.neighbor(0, 2), 3);
}

TEST(Graph, HasEdgeIsSymmetric) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, ArcEnumerationCoversBothDirections) {
  const Graph g = triangle();
  std::set<std::pair<NodeId, NodeId>> arcs;
  for (ArcId j = 0; j < g.arc_count(); ++j) {
    const NodeId s = g.arc_source(j);
    const NodeId t = g.arc_target(j);
    EXPECT_TRUE(g.has_edge(s, t));
    arcs.emplace(s, t);
  }
  EXPECT_EQ(arcs.size(), 6u);  // all distinct directed arcs
  EXPECT_TRUE(arcs.count({0, 1}) == 1 && arcs.count({1, 0}) == 1);
}

TEST(Graph, StationaryIsDegreeOver2m) {
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}});  // star
  EXPECT_DOUBLE_EQ(g.stationary(0), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(g.stationary(1), 1.0 / 6.0);
  double total = 0.0;
  for (NodeId u = 0; u < 4; ++u) {
    total += g.stationary(u);
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Graph, UndirectedEdgesRoundTrip) {
  const Graph g = triangle();
  const auto edges = g.undirected_edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST(Graph, RejectsSelfLoopsAndDuplicatesAndOutOfRange) {
  EXPECT_THROW(Graph(3, {{0, 0}}), ContractError);
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), ContractError);
  EXPECT_THROW(Graph(3, {{0, 3}}), ContractError);
  EXPECT_THROW(Graph(0, {}), ContractError);
#if OPINDYN_HOT_PATH_CHECKS
  // The per-step accessor preconditions are hot-path checks: compiled
  // out of optimised builds, verified here in debug / checked builds.
  const Graph g = triangle();
  EXPECT_THROW(g.degree(3), ContractError);
  EXPECT_THROW(g.neighbors(-1), ContractError);
  EXPECT_THROW(g.arc_source(6), ContractError);
#endif
}

TEST(Graph, SingletonIsAllowed) {
  const Graph g(1, {});
  EXPECT_EQ(g.node_count(), 1);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.degree(0), 0);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.add_edge(0, 1));
  EXPECT_FALSE(builder.add_edge(1, 0));  // same undirected edge
  EXPECT_TRUE(builder.add_edge(1, 2));
  EXPECT_EQ(builder.edge_count(), 2);
  EXPECT_TRUE(builder.has_edge(0, 1));
  EXPECT_TRUE(builder.has_edge(1, 0));
  const Graph g = builder.build("test");
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.name(), "test");
}

TEST(GraphBuilder, RejectsInvalidEdges) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(0, 0), ContractError);
  EXPECT_THROW(builder.add_edge(0, 5), ContractError);
}

TEST(GraphBuilder, UncheckedStreamingPathBuildsTheSameGraph) {
  // The reserve + add_edge_unchecked path the large-n generators use
  // must produce the identical CSR as the deduplicating path.
  GraphBuilder checked(5);
  GraphBuilder streamed(5);
  streamed.reserve(6);
  const std::pair<NodeId, NodeId> edges[] = {{0, 1}, {1, 2}, {2, 3},
                                             {3, 4}, {4, 0}, {1, 3}};
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(checked.add_edge(u, v));
    streamed.add_edge_unchecked(u, v);
  }
  const Graph a = checked.build();
  const Graph b = streamed.build();
  ASSERT_EQ(a.arc_count(), b.arc_count());
  for (std::int64_t j = 0; j < a.arc_count(); ++j) {
    const auto idx = static_cast<std::size_t>(j);
    EXPECT_EQ(a.adjacency_data()[idx], b.adjacency_data()[idx]);
    EXPECT_EQ(a.arc_source_data()[idx], b.arc_source_data()[idx]);
  }
}

TEST(GraphBuilder, UncheckedDuplicatesAreCaughtAtBuild) {
  GraphBuilder builder(3);
  builder.add_edge_unchecked(0, 1);
  builder.add_edge_unchecked(1, 0);  // violated guarantee
  EXPECT_THROW(builder.build(), ContractError);
}

}  // namespace
}  // namespace opindyn
