#include "src/graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph original = gen::petersen();
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const Graph parsed = read_edge_list(buffer);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.edge_count(), original.edge_count());
  for (const auto& [u, v] : original.undirected_edges()) {
    EXPECT_TRUE(parsed.has_edge(u, v));
  }
}

TEST(GraphIo, ReadRejectsMalformedInput) {
  {
    std::stringstream s("not numbers");
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
  {
    std::stringstream s("3 2\n0 1\n");  // truncated edge section
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
  {
    std::stringstream s("3 1\n0 3\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
  {
    std::stringstream s("3 2\n0 1\n0 1\n");  // duplicate edge
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
  {
    std::stringstream s("3 1\n1 1\n");  // self loop
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
  {
    std::stringstream s("-1 0\n");
    EXPECT_THROW(read_edge_list(s), std::runtime_error);
  }
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  const Graph g = gen::path(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(GraphIo, DotWithValuesLabelsNodes) {
  const Graph g = gen::path(2);
  const std::vector<double> values{1.5, -2.0};
  const std::string dot = to_dot(g, &values);
  EXPECT_NE(dot.find("1.5"), std::string::npos);
  EXPECT_NE(dot.find("-2"), std::string::npos);
}

}  // namespace
}  // namespace opindyn
