// GraphCache: one build per distinct key, shared immutable results, and
// hit/miss accounting.
#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph_cache.h"

namespace opindyn {
namespace {

TEST(GraphCache, BuildsOncePerKeyAndSharesTheResult) {
  GraphCache cache;
  int builds = 0;
  const auto build_cycle = [&builds] {
    ++builds;
    return gen::cycle(8);
  };
  const auto a = cache.get("cycle;8", build_cycle);
  const auto b = cache.get("cycle;8", build_cycle);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());  // the same immutable graph is shared
  EXPECT_EQ(a->node_count(), 8);

  const auto c = cache.get("cycle;12", [] { return gen::cycle(12); });
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(GraphCache, CachedGraphsOutliveTheCache) {
  std::shared_ptr<const Graph> kept;
  {
    GraphCache cache;
    kept = cache.get("star;5", [] { return gen::star(5); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0);
  }
  EXPECT_EQ(kept->node_count(), 5);
  EXPECT_EQ(kept->name(), "star(5)");
}

}  // namespace
}  // namespace opindyn
