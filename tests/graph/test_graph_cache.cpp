// GraphCache: one build per distinct key, shared immutable results,
// hit/miss accounting, and the locking contract -- builds run under a
// per-key latch outside the cache-wide mutex, so distinct keys build
// concurrently while one key still builds exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph_cache.h"

namespace opindyn {
namespace {

TEST(GraphCache, BuildsOncePerKeyAndSharesTheResult) {
  GraphCache cache;
  int builds = 0;
  const auto build_cycle = [&builds] {
    ++builds;
    return gen::cycle(8);
  };
  const auto a = cache.get("cycle;8", build_cycle);
  const auto b = cache.get("cycle;8", build_cycle);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());  // the same immutable graph is shared
  EXPECT_EQ(a->node_count(), 8);

  const auto c = cache.get("cycle;12", [] { return gen::cycle(12); });
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 2);
}

// Regression test for the serialised-build bug: GraphCache::get used to
// run `build` under the cache-wide mutex, so two cells needing
// *different* graphs built one at a time.  Each build below blocks
// until BOTH builds have started -- possible only if they run
// concurrently.  Under the old locking this times out (rather than
// deadlocking forever) and fails.
TEST(GraphCache, DistinctKeysBuildConcurrently) {
  GraphCache cache;
  std::mutex mutex;
  std::condition_variable both_started;
  int started = 0;
  const auto blocking_build = [&](NodeId n) {
    return [&, n] {
      std::unique_lock<std::mutex> lock(mutex);
      ++started;
      both_started.notify_all();
      EXPECT_TRUE(both_started.wait_for(lock, std::chrono::seconds(20),
                                        [&] { return started == 2; }))
          << "builds for distinct keys did not overlap: the cache is "
             "serialising construction under its global lock again";
      return gen::cycle(n);
    };
  };
  std::thread a([&] { cache.get("cycle;8", blocking_build(8)); });
  std::thread b([&] { cache.get("cycle;12", blocking_build(12)); });
  a.join();
  b.join();
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(GraphCache, OneKeyStillBuildsExactlyOnceUnderContention) {
  GraphCache cache;
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const Graph>> results(8);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&cache, &builds, &results, t] {
      results[t] = cache.get("cycle;16", [&builds] {
        ++builds;
        // Keep the build slow enough that latecomers pile onto the
        // latch while it runs.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        return gen::cycle(16);
      });
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(builds.load(), 1);
  for (const auto& graph : results) {
    EXPECT_EQ(graph.get(), results.front().get());
  }
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::int64_t>(results.size()));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GraphCache, EntryCapEvictsLeastRecentlyUsed) {
  GraphCache cache(CacheLimits{2, 0});
  const auto a = cache.get("cycle;8", [] { return gen::cycle(8); });
  const auto b = cache.get("cycle;12", [] { return gen::cycle(12); });
  // Touch "cycle;8" so "cycle;12" is the least recently used entry.
  cache.get("cycle;8", [] { return gen::cycle(8); });
  const auto c = cache.get("cycle;16", [] { return gen::cycle(16); });
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  // The evicted entry rebuilds on the next request (a fresh miss); the
  // retained one is still a hit.
  const std::int64_t misses_before = cache.misses();
  cache.get("cycle;12", [] { return gen::cycle(12); });
  EXPECT_EQ(cache.misses(), misses_before + 1);
  const std::int64_t hits_before = cache.hits();
  cache.get("cycle;16", [] { return gen::cycle(16); });
  EXPECT_EQ(cache.hits(), hits_before + 1);
  // Holders keep evicted graphs alive (shared ownership).
  EXPECT_EQ(b->node_count(), 12);
  EXPECT_EQ(a->node_count(), 8);
  EXPECT_EQ(c->node_count(), 16);
}

TEST(GraphCache, ByteCapTracksResidentBytesAcrossEviction) {
  GraphCache unbounded;
  const auto probe =
      unbounded.get("cycle;64", [] { return gen::cycle(64); });
  const std::uint64_t per_graph = probe->memory_bytes();
  ASSERT_GT(per_graph, 0u);

  // Room for two graphs of this size, not three.
  GraphCache cache(CacheLimits{0, 2 * per_graph});
  cache.get("a", [] { return gen::cycle(64); });
  cache.get("b", [] { return gen::cycle(64); });
  EXPECT_EQ(cache.resident_bytes(), 2 * per_graph);
  EXPECT_EQ(cache.evictions(), 0);
  cache.get("c", [] { return gen::cycle(64); });
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 2 * per_graph);
  cache.clear();
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(GraphCache, CachedGraphsOutliveTheCache) {
  std::shared_ptr<const Graph> kept;
  {
    GraphCache cache;
    kept = cache.get("star;5", [] { return gen::star(5); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0);
  }
  EXPECT_EQ(kept->node_count(), 5);
  EXPECT_EQ(kept->name(), "star(5)");
}

}  // namespace
}  // namespace opindyn
