// GraphLayout: the degree-sorted storage permutation behind the
// kernels' reorder mirror.  The layout never touches the Graph itself;
// these tests pin the bijection, the translated CSR arrays, and the
// scatter/gather round-trip the kernels rely on for bit-identity.
#include <gtest/gtest.h>

#include <vector>

#include "src/graph/generators.h"
#include "src/graph/layout.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

TEST(GraphLayout, DegreeSortedCollapsesToIdentityOnRegularGraphs) {
  const Graph g = gen::torus(6, 6);
  const GraphLayout layout = GraphLayout::degree_sorted(g);
  EXPECT_TRUE(layout.is_identity());
  // Identity scatter/gather must still copy verbatim.
  std::vector<double> original(static_cast<std::size_t>(g.node_count()));
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<double>(i) * 0.5;
  }
  std::vector<double> internal(original.size(), -1.0);
  layout.scatter(original, internal);
  EXPECT_EQ(internal, original);
}

TEST(GraphLayout, DegreeSortedIsAHubFirstBijection) {
  Rng graph_rng(41);
  const Graph g = gen::preferential_attachment(graph_rng, 64, 2);
  const GraphLayout layout = GraphLayout::degree_sorted(g);
  ASSERT_FALSE(layout.is_identity());
  ASSERT_EQ(layout.node_count(), g.node_count());

  const auto to_internal = layout.to_internal();
  const auto to_original = layout.to_original();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(to_original[static_cast<std::size_t>(
                  to_internal[static_cast<std::size_t>(u)])],
              u);
  }
  // Internal order is descending degree (ties by ascending original
  // id), so the heaviest hub owns slot 0 and the sequence never rises.
  EXPECT_EQ(g.degree(to_original[0]), g.max_degree());
  for (NodeId s = 1; s < g.node_count(); ++s) {
    const NodeId prev = to_original[static_cast<std::size_t>(s) - 1];
    const NodeId cur = to_original[static_cast<std::size_t>(s)];
    EXPECT_GE(g.degree(prev), g.degree(cur));
    if (g.degree(prev) == g.degree(cur)) {
      EXPECT_LT(prev, cur);
    }
  }
}

TEST(GraphLayout, TranslatedArraysPreserveArcOrder) {
  Rng graph_rng(43);
  const Graph g = gen::preferential_attachment(graph_rng, 48, 2);
  const GraphLayout layout = GraphLayout::degree_sorted(g);
  ASSERT_FALSE(layout.is_identity());
  const auto to_internal = layout.to_internal();
  const auto adj = layout.adjacency_internal();
  const auto src = layout.arc_source_internal();
  ASSERT_EQ(static_cast<std::int64_t>(adj.size()), g.arc_count());
  ASSERT_EQ(static_cast<std::int64_t>(src.size()), g.arc_count());
  // Elementwise translation: arc j keeps its position, only the node
  // id it names moves to its internal slot.
  for (std::int64_t j = 0; j < g.arc_count(); ++j) {
    const auto idx = static_cast<std::size_t>(j);
    EXPECT_EQ(adj[idx],
              to_internal[static_cast<std::size_t>(
                  g.adjacency_data()[idx])]);
    EXPECT_EQ(src[idx],
              to_internal[static_cast<std::size_t>(
                  g.arc_source_data()[idx])]);
  }
}

TEST(GraphLayout, ScatterGatherRoundTripsEveryValue) {
  Rng graph_rng(47);
  const Graph g = gen::preferential_attachment(graph_rng, 40, 2);
  const GraphLayout layout = GraphLayout::degree_sorted(g);
  ASSERT_FALSE(layout.is_identity());
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> original(n);
  for (std::size_t i = 0; i < n; ++i) {
    original[i] = static_cast<double>(i) + 0.25;
  }
  std::vector<double> internal(n, 0.0);
  std::vector<double> back(n, 0.0);
  layout.scatter(original, internal);
  // scatter really permutes: slot to_internal(i) holds original[i].
  const auto to_internal = layout.to_internal();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(internal[static_cast<std::size_t>(to_internal[i])],
              original[i]);
  }
  layout.gather(internal, back);
  EXPECT_EQ(back, original);
}

}  // namespace
}  // namespace opindyn
