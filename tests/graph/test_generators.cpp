#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(Generators, PathShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.min_degree(), 1);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, CycleIsTwoRegular) {
  const Graph g = gen::cycle(8);
  EXPECT_EQ(g.edge_count(), 8);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 2);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_FALSE(is_bipartite(gen::cycle(7)));
}

TEST(Generators, CompleteGraph) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.edge_count(), 15);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 5);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(10);
  EXPECT_EQ(g.edge_count(), 9);
  EXPECT_EQ(g.degree(0), 9);
  EXPECT_EQ(g.degree(5), 1);
  EXPECT_EQ(diameter(g), 2);
}

TEST(Generators, DoubleStarShape) {
  const Graph g = gen::double_star(4);
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_EQ(g.degree(0), 5);  // hub: 4 leaves + other hub
  EXPECT_EQ(g.degree(1), 5);
  EXPECT_EQ(g.degree(7), 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 3);
}

TEST(Generators, GridAndTorus) {
  const Graph grid = gen::grid(3, 4);
  EXPECT_EQ(grid.node_count(), 12);
  EXPECT_EQ(grid.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(grid.min_degree(), 2);
  EXPECT_EQ(grid.max_degree(), 4);
  EXPECT_TRUE(is_connected(grid));

  const Graph torus = gen::torus(4, 5);
  EXPECT_EQ(torus.node_count(), 20);
  EXPECT_TRUE(torus.is_regular());
  EXPECT_EQ(torus.min_degree(), 4);
  EXPECT_EQ(torus.edge_count(), 40);
}

TEST(Generators, HypercubeSpectrumFriendlyShape) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.node_count(), 16);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, CirculantDegrees) {
  const Graph g = gen::circulant(10, {1, 2});
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 12);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(3), 3);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(7);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));  // trees are bipartite
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(6), 1);
}

TEST(Generators, PetersenProperties) {
  const Graph g = gen::petersen();
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_EQ(g.edge_count(), 15);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 3);
  EXPECT_EQ(diameter(g), 2);
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Generators, BarbellAndLollipop) {
  const Graph bb = gen::barbell(5, 3);
  EXPECT_EQ(bb.node_count(), 13);
  EXPECT_TRUE(is_connected(bb));
  EXPECT_EQ(bb.max_degree(), 5);  // bridge endpoints in the cliques

  const Graph bb0 = gen::barbell(4, 0);
  EXPECT_EQ(bb0.node_count(), 8);
  EXPECT_TRUE(is_connected(bb0));

  const Graph lp = gen::lollipop(6, 4);
  EXPECT_EQ(lp.node_count(), 10);
  EXPECT_TRUE(is_connected(lp));
  EXPECT_EQ(lp.min_degree(), 1);
}

TEST(Generators, RandomRegularIsSimpleConnectedRegular) {
  Rng rng(123);
  for (const auto& [n, d] : {std::pair<NodeId, NodeId>{16, 3},
                             {20, 4},
                             {30, 5},
                             {12, 6}}) {
    const Graph g = gen::random_regular(rng, n, d);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(g.is_regular()) << "n=" << n << " d=" << d;
    EXPECT_EQ(g.min_degree(), d);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(1);
  EXPECT_THROW(gen::random_regular(rng, 5, 3), ContractError);
  EXPECT_THROW(gen::random_regular(rng, 5, 5), ContractError);
}

TEST(Generators, ErdosRenyiConnected) {
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(rng, 40, 0.2);
  EXPECT_EQ(g.node_count(), 40);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PreferentialAttachmentShape) {
  Rng rng(11);
  const Graph g = gen::preferential_attachment(rng, 100, 2);
  EXPECT_EQ(g.node_count(), 100);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.min_degree(), 2);
  // Heavy tail: some node should have degree well above the minimum.
  EXPECT_GE(g.max_degree(), 8);
  EXPECT_EQ(g.edge_count(), 3 + 97 * 2);  // K3 seed + 2 per newcomer
}

TEST(Generators, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(gen::path(1), ContractError);
  EXPECT_THROW(gen::cycle(2), ContractError);
  EXPECT_THROW(gen::torus(2, 5), ContractError);
  EXPECT_THROW(gen::circulant(10, {}), ContractError);
  EXPECT_THROW(gen::circulant(10, {0}), ContractError);
  EXPECT_THROW(gen::barbell(2, 1), ContractError);
  EXPECT_THROW(gen::preferential_attachment(rng, 3, 3), ContractError);
}

class RegularFamilies : public ::testing::TestWithParam<NodeId> {};

TEST_P(RegularFamilies, GeneratorsProduceConnectedGraphsAcrossSizes) {
  const NodeId n = GetParam();
  EXPECT_TRUE(is_connected(gen::cycle(n)));
  EXPECT_TRUE(is_connected(gen::complete(n)));
  EXPECT_TRUE(is_connected(gen::path(n)));
  EXPECT_TRUE(is_connected(gen::star(n)));
  EXPECT_TRUE(is_connected(gen::binary_tree(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegularFamilies,
                         ::testing::Values(3, 4, 5, 8, 16, 33, 64, 127));

}  // namespace
}  // namespace opindyn
