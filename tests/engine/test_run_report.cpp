// The ISSUE-6 observability contracts, end to end through the engine:
//
//  * the counter/cell/result sections of the run report are
//    byte-identical at --threads 1/4/8 (wall-clock sections excluded),
//  * golden CSV bytes are unchanged by enabling metrics + tracing,
//  * the Chrome trace parses and its "unit" span count matches the
//    scheduler's unit totals (cell x replica units + graph prefetch),
//  * the manifest carries every required section, nonzero counters,
//    and the graph-cache hit/miss split.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/engine/run_report.h"
#include "src/engine/runner.h"
#include "src/support/json.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ExperimentSpec small_sweep_spec() {
  ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 8;
  spec.seed = 11;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = parse_sweeps("k:1,2");
  spec.print_table = false;
  return spec;
}

TEST(RunReport, DeterministicSectionsAreIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_sweep_spec();
  std::string counters[3];
  std::string cells[3];
  std::string results[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    MetricsRegistry registry;
    const BatchResult result = run_experiment(spec, {}, {}, &registry);
    RunReportOptions options;
    options.include_timings = false;  // drop the wall-clock sections
    const json::Value report =
        build_run_report(spec, result, registry.fold(), options);
    EXPECT_EQ(report.find("timings_ms"), nullptr);
    EXPECT_EQ(report.find("perf"), nullptr);
    counters[i] = report.find("counters")->dump();
    cells[i] = report.find("cells")->dump();
    results[i] = report.find("result")->dump();
  }
  EXPECT_EQ(counters[0], counters[1]);
  EXPECT_EQ(counters[0], counters[2]);
  EXPECT_EQ(cells[0], cells[1]);
  EXPECT_EQ(cells[0], cells[2]);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(RunReport, MetricsCollectionLeavesCsvBytesUnchanged) {
  ExperimentSpec spec = small_sweep_spec();
  spec.threads = 4;
  std::string outputs[2];
  for (int pass = 0; pass < 2; ++pass) {
    const std::string path = ::testing::TempDir() + "report_golden_" +
                             std::to_string(pass) + ".csv";
    CsvSink csv(path);
    std::vector<RowSink*> sinks{&csv};
    if (pass == 0) {
      run_experiment(spec, sinks);
    } else {
      MetricsRegistry registry;
      run_experiment(spec, sinks, {}, &registry);
      EXPECT_FALSE(registry.fold().counters.empty());
    }
    outputs[pass] = read_file(path);
    std::remove(path.c_str());
    EXPECT_FALSE(outputs[pass].empty());
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(RunReport, TraceParsesAndUnitSpansMatchSchedulerTotals) {
  ExperimentSpec spec = small_sweep_spec();
  spec.threads = 4;
  MetricsRegistry registry;
  run_experiment(spec, {}, {}, &registry);
  const FoldedMetrics folded = registry.fold();

  const json::Value trace = json::parse(build_trace_json(folded).dump());
  const json::Value* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::int64_t unit_spans = 0;
  std::int64_t cell_unit_spans = 0;
  for (const json::Value& event : events->as_array()) {
    if (const json::Value* cat = event.find("cat");
        cat != nullptr && cat->as_string() == "unit") {
      ++unit_spans;
      if (event.find("name")->as_string().rfind("cell/", 0) == 0) {
        ++cell_unit_spans;
      }
    }
  }
  // Every scheduled unit -- replica units plus the graph prefetch units
  // -- produced exactly one trace span...
  EXPECT_EQ(unit_spans, folded.counters.at("scheduler.units_run"));
  // ...and the cell-labeled ones match the per-cell unit counters.
  std::int64_t labeled_units = 0;
  for (const auto& [label, counters] : folded.labeled) {
    if (label.rfind("cell/", 0) == 0) {
      labeled_units += counters.at("units");
    }
  }
  EXPECT_EQ(cell_unit_spans, labeled_units);
  EXPECT_GT(cell_unit_spans, 0);
  // Phase spans from the runner are present too.
  bool saw_fold_phase = false;
  for (const json::Value& event : events->as_array()) {
    if (const json::Value* cat = event.find("cat");
        cat != nullptr && cat->as_string() == "phase" &&
        event.find("name")->as_string() == "fold") {
      saw_fold_phase = true;
    }
  }
  EXPECT_TRUE(saw_fold_phase);
}

TEST(RunReport, ManifestCarriesAllSectionsAndLiveCounters) {
  ExperimentSpec spec = small_sweep_spec();
  spec.threads = 2;
  MetricsRegistry registry;
  const BatchResult result = run_experiment(spec, {}, {}, &registry);
  RunReportOptions options;
  options.wall_ms = 123.0;
  const json::Value report =
      build_run_report(spec, result, registry.fold(), options);

  for (const char* key :
       {"schema", "scenario", "seed", "threads", "spec", "build",
        "counters", "cells", "result", "timings_ms", "gauges", "workers",
        "perf"}) {
    EXPECT_NE(report.find(key), nullptr) << key;
  }
  EXPECT_EQ(report.find("schema")->as_string(), "opindyn-run-report-v1");
  // The spec echo round-trips the input.
  EXPECT_EQ(report.find("spec")->find("scenario")->as_string(),
            "node_vs_edge");
  EXPECT_EQ(report.find("spec")->find("sweep")->as_string(), "k:1,2");
  // The build block is the `opindyn version` block.
  EXPECT_NE(report.find("build")->find("git_hash"), nullptr);
  EXPECT_NE(report.find("build")->find("checked_hot_path"), nullptr);

  const json::Value* counters = report.find("counters");
  EXPECT_GT(counters->find("engine.steps")->as_int(), 0);
  EXPECT_EQ(counters->find("engine.cells")->as_int(), 2);
  EXPECT_GT(counters->find("scheduler.units_run")->as_int(), 0);

  // Satellite (b): both halves of the graph-cache hit rate.  One
  // distinct graph, requested once by the prefetch and once per cell.
  EXPECT_EQ(result.graphs_built, 1);
  EXPECT_EQ(result.graph_cache_hits, 2);
  const json::Value* result_block = report.find("result");
  EXPECT_EQ(result_block->find("graphs_built")->as_int(), 1);
  EXPECT_EQ(result_block->find("graph_cache_hits")->as_int(), 2);

  // Per-cell table: one row per grid cell, labeled counters populated.
  const json::Array& cells = report.find("cells")->as_array();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].find("label")->as_string(), "cell/0");
  EXPECT_EQ(cells[1].find("label")->as_string(), "cell/1");
  EXPECT_EQ(cells[0].find("overrides")->find("k")->as_string(), "1");
  EXPECT_GT(
      cells[0].find("counters")->find("engine.steps")->as_int(), 0);

  EXPECT_DOUBLE_EQ(report.find("perf")->find("wall_ms")->as_double(),
                   123.0);
  EXPECT_GT(report.find("perf")->find("peak_rss_bytes")->as_int(), 0);
}

TEST(RunReport, BadReportPathFailsBeforeRunningAndPreservesFiles) {
  const std::string precious =
      ::testing::TempDir() + "precious_report.json";
  {
    std::ofstream out(precious, std::ios::binary);
    out << "{\"precious\": true}\n";
  }
  ExperimentSpec spec = small_sweep_spec();
  spec.metrics_json_path = "/nonexistent-dir/report.json";
  EXPECT_THROW(run_experiment_with_default_sinks(spec),
               std::runtime_error);

  // A failed *scenario* validation must not touch an existing report.
  spec.metrics_json_path = precious;
  spec.scenario = "no_such_scenario";
  EXPECT_THROW(run_experiment_with_default_sinks(spec),
               std::runtime_error);
  EXPECT_EQ(read_file(precious), "{\"precious\": true}\n");
  std::remove(precious.c_str());
}

TEST(RunReport, DefaultSinksWriteReportAndTraceFiles) {
  ExperimentSpec spec = small_sweep_spec();
  spec.threads = 2;
  const std::string report_path =
      ::testing::TempDir() + "e2e_report.json";
  const std::string trace_path = ::testing::TempDir() + "e2e_trace.json";
  spec.metrics_json_path = report_path;
  spec.trace_json_path = trace_path;
  run_experiment_with_default_sinks(spec);

  const json::Value report = json::parse_file(report_path);
  EXPECT_EQ(report.find("schema")->as_string(), "opindyn-run-report-v1");
  EXPECT_GT(report.find("perf")->find("wall_ms")->as_double(), 0.0);
  const json::Value trace = json::parse_file(trace_path);
  EXPECT_FALSE(trace.find("traceEvents")->as_array().empty());
  std::remove(report_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
