// The engine-side SpectrumCache contract: a sweep whose cells share one
// graph performs exactly one eigensolve per spectrum kind -- across the
// scenario's prediction batches AND the f2_* initial distributions --
// with the counters surfaced in BatchResult, and the cached spectra
// leave the emitted CSV bytes identical at every thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/engine/runner.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ExperimentSpec small_spec(const std::string& scenario) {
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.graph.family = "cycle";
  spec.graph.n = 10;
  spec.replicas = 6;
  spec.seed = 13;
  spec.convergence.epsilon = 1e-5;
  spec.print_table = false;
  return spec;
}

// The ISSUE-4 acceptance criterion: C cells sharing one graph, R
// replicas each -- exactly ONE eigensolve for the whole batch, asserted
// via the BatchResult counters.
TEST(SpectrumCacheEngine, SweepOverOneGraphSolvesExactlyOnce) {
  ExperimentSpec spec = small_spec("thm24_edge_convergence");
  spec.sweeps = parse_sweeps("alpha:0.3,0.5,0.7");
  const BatchResult result = run_experiment(spec);
  EXPECT_EQ(result.work_items, 3);
  EXPECT_EQ(result.graphs_built, 1);
  // Three per-cell Laplacian predictions, one Jacobi solve: the other
  // two cells hit the memo.
  EXPECT_EQ(result.spectra_solved, 1);
  EXPECT_EQ(result.spectra_hits, 2);
}

TEST(SpectrumCacheEngine, F2InitialSharesTheScenarioEigensolve) {
  // propB2_edge consumes the Laplacian spectrum twice per cell: once
  // for the f2_laplacian initial state, once for the lower-scale
  // prediction batch.  Both go through the shared record, so a two-cell
  // sweep still solves once.
  ExperimentSpec spec = small_spec("propB2_edge");
  spec.initial.distribution = "f2_laplacian";
  spec.initial.center = "none";
  spec.sweeps = parse_sweeps("alpha:0.4,0.6");
  const BatchResult result = run_experiment(spec);
  EXPECT_EQ(result.work_items, 2);
  EXPECT_EQ(result.spectra_solved, 1);
  // The prefetch pass solves; two initials + two predictions then hit.
  EXPECT_EQ(result.spectra_hits, 4);

  // Same sharing for the walk spectrum on the NodeModel side.
  ExperimentSpec node = small_spec("propB2_node");
  node.initial.distribution = "f2_walk";
  node.initial.center = "none";
  node.sweeps = parse_sweeps("alpha:0.4,0.6");
  const BatchResult node_result = run_experiment(node);
  EXPECT_EQ(node_result.spectra_solved, 1);
  EXPECT_EQ(node_result.spectra_hits, 4);
}

TEST(SpectrumCacheEngine, DistinctGraphsSolveSeparately) {
  ExperimentSpec spec = small_spec("thm24_edge_convergence");
  spec.sweeps = parse_sweeps("n:8,12");
  const BatchResult result = run_experiment(spec);
  EXPECT_EQ(result.graphs_built, 2);
  EXPECT_EQ(result.spectra_solved, 2);  // one Laplacian solve per size
  EXPECT_EQ(result.spectra_hits, 0);
}

TEST(SpectrumCacheEngine, NonSpectralScenarioSolvesNothing) {
  ExperimentSpec spec = small_spec("node");
  spec.sweeps = parse_sweeps("alpha:0.3,0.5");
  const BatchResult result = run_experiment(spec);
  EXPECT_EQ(result.spectra_solved, 0);
  EXPECT_EQ(result.spectra_hits, 0);
}

// The satellite golden-determinism criterion: with the cache enabled,
// the spectral scenarios emit byte-identical aggregate AND streamed CSV
// at 1, 4 and 8 threads (cold cache in every run, cells racing onto the
// pool in arbitrary order).
class SpectralScenarioDeterminism
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SpectralScenarioDeterminism, CsvBytesIdenticalAtOneFourEightThreads) {
  ExperimentSpec spec = small_spec(GetParam());
  spec.replicas = 12;
  spec.seed = 31;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = parse_sweeps("alpha:0.4,0.6");
  if (spec.scenario == "propB2_edge") {
    spec.initial.distribution = "f2_laplacian";
    spec.initial.center = "none";
  }

  std::string aggregate[3];
  std::string streamed[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string base = ::testing::TempDir() + "spectrum_golden_" +
                             spec.scenario + "_" + std::to_string(i);
    CsvSink csv(base + ".csv");
    CsvSink rows_csv(base + "_rows.csv");
    std::vector<RowSink*> sinks{&csv};
    std::vector<RowSink*> row_sinks{&rows_csv};
    const BatchResult result = run_experiment(spec, sinks, row_sinks);
    EXPECT_EQ(result.work_items, 2);
    EXPECT_EQ(result.spectra_solved, 1);
    aggregate[i] = read_file(base + ".csv");
    streamed[i] = read_file(base + "_rows.csv");
    std::remove((base + ".csv").c_str());
    std::remove((base + "_rows.csv").c_str());
    EXPECT_FALSE(aggregate[i].empty());
    EXPECT_FALSE(streamed[i].empty());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(aggregate[0], aggregate[2]);
  EXPECT_EQ(streamed[0], streamed[1]);
  EXPECT_EQ(streamed[0], streamed[2]);
}

INSTANTIATE_TEST_SUITE_P(CachedSpectra, SpectralScenarioDeterminism,
                         ::testing::Values("propB2_edge",
                                           "thm24_edge_convergence"));

}  // namespace
}  // namespace engine
}  // namespace opindyn
