// The HistogramSink: column selection, binning over the exact data
// range, exact order-statistic quantiles, CSV output, and the error
// paths (unknown column, non-numeric cells).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/engine/runner.h"
#include "src/engine/sinks.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

HistogramSink::Options options_with(std::string column,
                                    std::vector<double> quantiles = {}) {
  HistogramSink::Options options;
  options.column = std::move(column);
  options.bins = 4;
  options.quantiles = std::move(quantiles);
  return options;
}

TEST(HistogramSink, BinsSelectedColumnOverExactRange) {
  HistogramSink sink(options_with("value"));
  sink.begin({"label", "value"});
  for (int i = 0; i < 8; ++i) {
    sink.row({"x", std::to_string(i)});  // 0..7
  }
  sink.finish();
  ASSERT_NE(sink.histogram(), nullptr);
  EXPECT_EQ(sink.samples(), 8u);
  EXPECT_EQ(sink.histogram()->bins(), 4u);
  EXPECT_EQ(sink.histogram()->total(), 8);
  // The range covers the data exactly: nothing saturates, two samples
  // per bin.
  EXPECT_EQ(sink.histogram()->underflow(), 0);
  EXPECT_EQ(sink.histogram()->overflow(), 0);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(sink.histogram()->count(b), 2) << b;
  }
}

TEST(HistogramSink, DefaultsToLastColumnAndComputesExactQuantiles) {
  HistogramSink sink(options_with("", {0.0, 0.5, 1.0}));
  sink.begin({"replica", "T"});
  for (int i = 100; i >= 1; --i) {  // 1..100 in reverse order
    sink.row({"r", std::to_string(i)});
  }
  sink.finish();
  ASSERT_EQ(sink.quantile_values().size(), 3u);
  // Exact order statistics of {1..100}, not bin midpoints.
  EXPECT_DOUBLE_EQ(sink.quantile_values()[0], 1.0);
  EXPECT_DOUBLE_EQ(sink.quantile_values()[1], 51.0);
  EXPECT_DOUBLE_EQ(sink.quantile_values()[2], 100.0);
}

TEST(HistogramSink, WritesBinCsv) {
  const std::string path = ::testing::TempDir() + "hist_sink_test.csv";
  HistogramSink::Options options = options_with("value");
  options.csv_path = path;
  HistogramSink sink(std::move(options));
  sink.begin({"value"});
  sink.row({"0"});
  sink.row({"4"});
  sink.finish();
  const std::string csv = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(csv.find("bin_lo,bin_hi,count"), std::string::npos);
  // 4 bins + header = 5 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(HistogramSink, AllEqualValuesDoNotCrash) {
  HistogramSink sink(options_with("value"));
  sink.begin({"value"});
  sink.row({"3.5"});
  sink.row({"3.5"});
  sink.finish();
  ASSERT_NE(sink.histogram(), nullptr);
  EXPECT_EQ(sink.histogram()->total(), 2);
  EXPECT_EQ(sink.histogram()->count(0), 2);
}

TEST(HistogramSink, EmptyChannelFinishesCleanly) {
  HistogramSink sink(options_with("value", {0.5}));
  sink.begin({"value"});
  sink.finish();
  EXPECT_EQ(sink.histogram(), nullptr);
  EXPECT_TRUE(sink.quantile_values().empty());
}

TEST(HistogramSink, RejectsUnknownColumnAndNonNumericCells) {
  HistogramSink unknown(options_with("missing"));
  EXPECT_THROW(unknown.begin({"a", "b"}), std::runtime_error);

  HistogramSink sink(options_with("model"));
  sink.begin({"model", "T"});
  EXPECT_THROW(sink.row({"NodeModel", "7"}), std::runtime_error);
  // Trailing garbage is not numeric either.
  HistogramSink strict(options_with("T"));
  strict.begin({"model", "T"});
  EXPECT_THROW(strict.row({"x", "7abc"}), std::runtime_error);
}

TEST(HistogramSink, SummaryLineNamesColumnAndQuantiles) {
  std::ostringstream out;
  HistogramSink::Options options = options_with("T", {0.5});
  options.summary_out = &out;
  HistogramSink sink(std::move(options));
  sink.begin({"replica", "T"});
  sink.row({"0", "1"});
  sink.row({"1", "3"});
  sink.finish();
  EXPECT_NE(out.str().find("hist(T): 2 values"), std::string::npos);
  EXPECT_NE(out.str().find("q0.5="), std::string::npos);
}

// End-to-end: the sink consumes the engine's streamed row channel, and
// its binned CSV is byte-identical at every thread count (the ISSUE-3
// determinism criterion for the histogram output).
TEST(HistogramSink, EngineHistogramCsvIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.scenario = "whp_tail";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 16;
  spec.seed = 5;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = parse_sweeps("alpha:0.3,0.5");
  spec.print_table = false;

  std::string outputs[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string path = ::testing::TempDir() + "engine_hist_" +
                             std::to_string(i) + ".csv";
    HistogramSink::Options options;
    options.column = "T_eps";
    options.bins = 6;
    options.quantiles = {0.5, 0.9};
    options.csv_path = path;
    HistogramSink hist(std::move(options));
    std::vector<RowSink*> row_sinks{&hist};
    run_experiment(spec, {}, row_sinks);
    EXPECT_EQ(hist.samples(), 64u);  // 2 models x 16 replicas x 2 cells
    outputs[i] = read_file(path);
    std::remove(path.c_str());
    EXPECT_FALSE(outputs[i].empty());
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
