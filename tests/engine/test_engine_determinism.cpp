// The engine's determinism contract: for a fixed seed, both a raw
// CellScheduler batch and a full engine batch (grid expansion + sharded
// replicas + CSV emission) produce bit-identical results at any thread
// count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/engine/runner.h"
#include "src/engine/shard.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EngineDeterminism, ReplicaBatchIsBitIdenticalAcrossThreadCounts) {
  const Graph g = gen::cycle(16);
  Rng init_rng(8);
  auto xi = initial::rademacher(init_rng, 16);
  initial::center_plain(xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  const auto body = [&](std::int64_t, Rng& rng, std::span<double> out) {
    auto process = make_process(g, config, xi);
    ConvergenceOptions convergence;
    convergence.epsilon = 1e-10;
    const ConvergenceResult res =
        run_until_converged(*process, rng, convergence);
    out[0] = res.final_value;
    out[1] = static_cast<double>(res.steps);
  };
  CellScheduler one(1);
  CellScheduler eight(8);
  const auto serial = one.run(48, 17, 2, body);
  const auto parallel = eight.run(48, 17, 2, body);

  EXPECT_EQ(serial[0].count(), parallel[0].count());
  // Bitwise equality, not EXPECT_NEAR: the fold order is fixed.
  EXPECT_EQ(serial[0].mean(), parallel[0].mean());
  EXPECT_EQ(serial[0].variance(), parallel[0].variance());
  EXPECT_EQ(serial[0].min(), parallel[0].min());
  EXPECT_EQ(serial[0].max(), parallel[0].max());
  EXPECT_EQ(serial[1].mean(), parallel[1].mean());
  EXPECT_EQ(serial[1].variance(), parallel[1].variance());
}

TEST(EngineDeterminism, CellSchedulerFoldsInReplicaOrder) {
  CellScheduler serial(1);
  CellScheduler parallel(8);
  const auto body = [](std::int64_t r, Rng& rng, std::span<double> out) {
    out[0] = rng.next_double() + static_cast<double>(r) * 1e-6;
  };
  const auto a = serial.run(100, 5, 1, body);
  const auto b = parallel.run(100, 5, 1, body);
  EXPECT_EQ(a[0].mean(), b[0].mean());
  EXPECT_EQ(a[0].variance(), b[0].variance());
  EXPECT_EQ(a[0].count(), 100);
}

TEST(EngineDeterminism, BatchCsvIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "cycle";
  spec.graph.n = 16;
  spec.replicas = 24;
  spec.seed = 7;
  spec.convergence.epsilon = 1e-8;
  spec.sweeps = parse_sweeps("k:1,2");
  spec.print_table = false;

  std::string outputs[3];
  const std::size_t thread_counts[3] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string path = ::testing::TempDir() +
                             "opindyn_determinism_" + std::to_string(i) +
                             ".csv";
    CsvSink csv(path);
    std::vector<RowSink*> sinks{&csv};
    const BatchResult result = run_experiment(spec, sinks);
    EXPECT_EQ(result.work_items, 2);
    EXPECT_EQ(result.rows.size(), 2u);
    outputs[i] = read_file(path);
    std::remove(path.c_str());
    EXPECT_FALSE(outputs[i].empty());
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

// The ISSUE-2 acceptance criterion: a multi-cell sweep with per-replica
// row streaming produces byte-identical CSVs -- on both channels -- at
// 1, 4 and 8 threads, even though all (cell x replica) units of the
// grid run concurrently on one pool.
TEST(EngineDeterminism, StreamedRowsAreByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.scenario = "whp_tail";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 16;
  spec.seed = 5;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = parse_sweeps("alpha:0.3,0.5;n:12,16");
  spec.print_table = false;

  std::string aggregate[3];
  std::string streamed[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string base = ::testing::TempDir() + "opindyn_stream_" +
                             std::to_string(i);
    CsvSink csv(base + ".csv");
    CsvSink rows_csv(base + "_rows.csv");
    std::vector<RowSink*> sinks{&csv};
    std::vector<RowSink*> row_sinks{&rows_csv};
    const BatchResult result = run_experiment(spec, sinks, row_sinks);
    EXPECT_EQ(result.work_items, 4);
    EXPECT_EQ(result.rows.size(), 8u);  // 2 models per cell
    // 2 models x 16 replicas per cell, 4 cells.
    EXPECT_EQ(result.replica_rows.size(), 128u);
    aggregate[i] = read_file(base + ".csv");
    streamed[i] = read_file(base + "_rows.csv");
    std::remove((base + ".csv").c_str());
    std::remove((base + "_rows.csv").c_str());
    EXPECT_FALSE(aggregate[i].empty());
    EXPECT_FALSE(streamed[i].empty());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(aggregate[0], aggregate[2]);
  EXPECT_EQ(streamed[0], streamed[1]);
  EXPECT_EQ(streamed[0], streamed[2]);
}

// Sweeping model parameters must not rebuild the graph per cell: the
// runner's GraphCache shares one immutable Graph across the sweep.
TEST(EngineDeterminism, GraphCacheBuildsEachDistinctGraphOnce) {
  ExperimentSpec spec;
  spec.scenario = "node";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 4;
  spec.convergence.epsilon = 1e-4;
  spec.sweeps = parse_sweeps("alpha:0.3,0.5,0.7;k:1,2");
  spec.print_table = false;

  const BatchResult swept = run_experiment(spec);
  EXPECT_EQ(swept.work_items, 6);
  EXPECT_EQ(swept.graphs_built, 1);

  // A sweep that really changes the graph builds one per size.
  spec.sweeps = parse_sweeps("n:12,16,20");
  const BatchResult sized = run_experiment(spec);
  EXPECT_EQ(sized.work_items, 3);
  EXPECT_EQ(sized.graphs_built, 3);
}

// The ISSUE-3 acceptance criterion for the ported bench scenarios:
// aggregate CSV and streamed per-replica CSV bytes are identical at
// --threads 1/4/8 for the newly registered paper scenarios.  Each
// scenario here covers a different port family: duality (Fig. 1/4),
// martingale (Lemma 4.1), thm24_edge_variance (the variance suite).
class PortedScenarioDeterminism
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PortedScenarioDeterminism, CsvBytesIdenticalAtOneFourEightThreads) {
  ExperimentSpec spec;
  spec.scenario = GetParam();
  spec.graph.family = "cycle";
  spec.graph.n = 10;
  spec.replicas = 12;
  spec.seed = 29;
  spec.horizon = 40;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = parse_sweeps("alpha:0.4,0.6");
  spec.print_table = false;

  std::string aggregate[3];
  std::string streamed[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string base = ::testing::TempDir() + "ported_" +
                             spec.scenario + "_" + std::to_string(i);
    CsvSink csv(base + ".csv");
    CsvSink rows_csv(base + "_rows.csv");
    std::vector<RowSink*> sinks{&csv};
    std::vector<RowSink*> row_sinks{&rows_csv};
    const BatchResult result = run_experiment(spec, sinks, row_sinks);
    EXPECT_EQ(result.work_items, 2);
    aggregate[i] = read_file(base + ".csv");
    streamed[i] = read_file(base + "_rows.csv");
    std::remove((base + ".csv").c_str());
    std::remove((base + "_rows.csv").c_str());
    EXPECT_FALSE(aggregate[i].empty());
    EXPECT_FALSE(streamed[i].empty());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(aggregate[0], aggregate[2]);
  EXPECT_EQ(streamed[0], streamed[1]);
  EXPECT_EQ(streamed[0], streamed[2]);
}

INSTANTIATE_TEST_SUITE_P(PaperScenarios, PortedScenarioDeterminism,
                         ::testing::Values("duality", "martingale",
                                           "thm24_edge_variance"));

// The remaining ported scenarios at least run through the engine and
// produce a row per cell (their heavy exact machinery -- eigensolves,
// Q-chain matrices, enumerations -- runs on the pool).
TEST(EngineDeterminism, AllPaperScenariosRunThroughTheEngine) {
  for (const std::string scenario :
       {"qchain", "thm22_variance", "thm24_edge_convergence",
        "prop58_variance", "propB1_drop", "propB2_node", "propB2_edge"}) {
    ExperimentSpec spec;
    spec.scenario = scenario;
    spec.graph.family = "cycle";
    spec.graph.n = 8;
    spec.replicas = 4;
    spec.seed = 3;
    spec.convergence.epsilon = 1e-4;
    spec.print_table = false;
    if (scenario == "propB2_node") {
      spec.initial.distribution = "f2_walk";
      spec.initial.center = "none";
    } else if (scenario == "propB2_edge") {
      spec.initial.distribution = "f2_laplacian";
      spec.initial.center = "none";
    }
    const BatchResult result = run_experiment(spec);
    EXPECT_EQ(result.work_items, 1) << scenario;
    EXPECT_FALSE(result.rows.empty()) << scenario;
  }
}

// Regression: the default-sink wrapper validates the scenario BEFORE
// opening any output file, so a typo'd --scenario (or --quantiles on a
// non-streaming scenario) must not truncate a pre-existing CSV.
TEST(EngineDeterminism, FailedValidationLeavesExistingOutputIntact) {
  const std::string path =
      ::testing::TempDir() + "opindyn_precious_output.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "precious,rows\n1,2\n";
  }
  ExperimentSpec spec;
  spec.scenario = "nodde";  // unknown
  spec.csv_path = path;
  spec.print_table = false;
  EXPECT_THROW(run_experiment_with_default_sinks(spec),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "precious,rows\n1,2\n");

  spec.scenario = "node";  // known, but streams no rows
  spec.quantiles = {0.5};
  EXPECT_THROW(run_experiment_with_default_sinks(spec),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "precious,rows\n1,2\n");
  std::remove(path.c_str());
}

// The PR-8 acceptance criterion for the generalized model family: a
// cross-model sweep (model= as the sweep axis) produces byte-identical
// aggregate and streamed CSVs at 1, 4 and 8 threads -- every kind's
// step_burst kernel runs under the shared scheduler here.
TEST(EngineDeterminism, CrossModelSweepCsvBytesIdenticalAcrossThreads) {
  ExperimentSpec spec;
  spec.scenario = "cross_model";
  spec.graph.family = "random_regular";
  spec.graph.degree = 4;
  spec.graph.n = 12;
  spec.replicas = 8;
  spec.seed = 37;
  spec.convergence.epsilon = 1e-5;
  spec.convergence.max_steps = 200000;
  spec.sweeps = parse_sweeps("model:node,edge,voter,gossip,weighted_median");
  spec.print_table = false;

  std::string aggregate[3];
  std::string streamed[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string base = ::testing::TempDir() + "cross_model_" +
                             std::to_string(i);
    CsvSink csv(base + ".csv");
    CsvSink rows_csv(base + "_rows.csv");
    std::vector<RowSink*> sinks{&csv};
    std::vector<RowSink*> row_sinks{&rows_csv};
    const BatchResult result = run_experiment(spec, sinks, row_sinks);
    EXPECT_EQ(result.work_items, 5);
    EXPECT_EQ(result.rows.size(), 5u);
    EXPECT_EQ(result.replica_rows.size(), 40u);  // 5 models x 8 replicas
    aggregate[i] = read_file(base + ".csv");
    streamed[i] = read_file(base + "_rows.csv");
    std::remove((base + ".csv").c_str());
    std::remove((base + "_rows.csv").c_str());
    EXPECT_FALSE(aggregate[i].empty());
    EXPECT_FALSE(streamed[i].empty());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(aggregate[0], aggregate[2]);
  EXPECT_EQ(streamed[0], streamed[1]);
  EXPECT_EQ(streamed[0], streamed[2]);
}

TEST(EngineDeterminism, BaselineScenarioIsDeterministicToo) {
  ExperimentSpec spec;
  spec.scenario = "voter";
  spec.graph.family = "complete";
  spec.graph.n = 12;
  spec.replicas = 32;
  spec.seed = 21;
  spec.print_table = false;

  MemorySink a;
  spec.threads = 1;
  std::vector<RowSink*> sink_a{&a};
  run_experiment(spec, sink_a);

  MemorySink b;
  spec.threads = 6;
  std::vector<RowSink*> sink_b{&b};
  run_experiment(spec, sink_b);

  EXPECT_EQ(a.columns(), b.columns());
  EXPECT_EQ(a.rows(), b.rows());
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
