// The engine's determinism contract: for a fixed seed, both the core
// monte_carlo harness and a full engine batch (grid expansion + sharded
// replicas + CSV emission) produce bit-identical results at any thread
// count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/engine/runner.h"
#include "src/engine/shard.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EngineDeterminism, MonteCarloIsBitIdenticalAcrossThreadCounts) {
  const Graph g = gen::cycle(16);
  Rng init_rng(8);
  auto xi = initial::rademacher(init_rng, 16);
  initial::center_plain(xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  MonteCarloOptions options;
  options.replicas = 48;
  options.seed = 17;
  options.convergence.epsilon = 1e-10;

  options.threads = 1;
  const MonteCarloResult serial = monte_carlo(g, config, xi, options);
  options.threads = 8;
  const MonteCarloResult parallel = monte_carlo(g, config, xi, options);

  EXPECT_EQ(serial.replicas, parallel.replicas);
  EXPECT_EQ(serial.diverged, parallel.diverged);
  // Bitwise equality, not EXPECT_NEAR: the fold order is fixed.
  EXPECT_EQ(serial.convergence_value.mean(),
            parallel.convergence_value.mean());
  EXPECT_EQ(serial.convergence_value.variance(),
            parallel.convergence_value.variance());
  EXPECT_EQ(serial.convergence_value.min(),
            parallel.convergence_value.min());
  EXPECT_EQ(serial.convergence_value.max(),
            parallel.convergence_value.max());
  EXPECT_EQ(serial.steps.mean(), parallel.steps.mean());
  EXPECT_EQ(serial.steps.variance(), parallel.steps.variance());
}

TEST(EngineDeterminism, ReplicaSchedulerFoldsInReplicaOrder) {
  ReplicaScheduler serial(1);
  ReplicaScheduler parallel(8);
  const auto body = [](std::int64_t r, Rng& rng, std::span<double> out) {
    out[0] = rng.next_double() + static_cast<double>(r) * 1e-6;
  };
  const auto a = serial.run(100, 5, 1, body);
  const auto b = parallel.run(100, 5, 1, body);
  EXPECT_EQ(a[0].mean(), b[0].mean());
  EXPECT_EQ(a[0].variance(), b[0].variance());
  EXPECT_EQ(a[0].count(), 100);
}

TEST(EngineDeterminism, BatchCsvIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "cycle";
  spec.graph.n = 16;
  spec.replicas = 24;
  spec.seed = 7;
  spec.convergence.epsilon = 1e-8;
  spec.sweeps = parse_sweeps("k:1,2");
  spec.print_table = false;

  std::string outputs[3];
  const std::size_t thread_counts[3] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    spec.threads = thread_counts[i];
    const std::string path = ::testing::TempDir() +
                             "opindyn_determinism_" + std::to_string(i) +
                             ".csv";
    CsvSink csv(path);
    std::vector<RowSink*> sinks{&csv};
    const BatchResult result = run_experiment(spec, sinks);
    EXPECT_EQ(result.work_items, 2);
    EXPECT_EQ(result.rows.size(), 2u);
    outputs[i] = read_file(path);
    std::remove(path.c_str());
    EXPECT_FALSE(outputs[i].empty());
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(EngineDeterminism, BaselineScenarioIsDeterministicToo) {
  ExperimentSpec spec;
  spec.scenario = "voter";
  spec.graph.family = "complete";
  spec.graph.n = 12;
  spec.replicas = 32;
  spec.seed = 21;
  spec.print_table = false;

  MemorySink a;
  spec.threads = 1;
  std::vector<RowSink*> sink_a{&a};
  run_experiment(spec, sink_a);

  MemorySink b;
  spec.threads = 6;
  std::vector<RowSink*> sink_b{&b};
  run_experiment(spec, sink_b);

  EXPECT_EQ(a.columns(), b.columns());
  EXPECT_EQ(a.rows(), b.rows());
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
