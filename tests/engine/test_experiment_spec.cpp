#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/engine/experiment_spec.h"
#include "src/engine/runner.h"

namespace opindyn {
namespace engine {
namespace {

TEST(ExperimentSpec, DefaultsRoundTripThroughSpecFile) {
  ExperimentSpec spec;
  spec.scenario = "node_vs_edge";
  spec.graph.family = "torus";
  spec.graph.n = 256;
  spec.model.alpha = 0.25;
  spec.model.k = 3;
  spec.model.lazy = true;
  spec.model.sampling = SamplingMode::with_replacement;
  spec.replicas = 12;
  spec.seed = 99;
  spec.threads = 2;
  spec.convergence.epsilon = 1e-9;
  spec.horizon = 512;
  spec.sweeps = parse_sweeps("k:1,2,4;alpha:0.3,0.5");
  spec.csv_path = "out.csv";
  spec.rows_csv_path = "rows.csv";

  const std::string text = to_key_values(spec);
  const std::string path =
      ::testing::TempDir() + "opindyn_spec_roundtrip.spec";
  {
    std::ofstream out(path);
    out << "# comment line\n\n" << text;
  }
  const ExperimentSpec reparsed = parse_spec_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(to_key_values(reparsed), text);
  EXPECT_EQ(reparsed.scenario, "node_vs_edge");
  EXPECT_EQ(reparsed.graph.n, 256);
  EXPECT_EQ(reparsed.horizon, 512);
  EXPECT_EQ(reparsed.rows_csv_path, "rows.csv");
  EXPECT_TRUE(reparsed.model.lazy);
  EXPECT_EQ(reparsed.model.sampling, SamplingMode::with_replacement);
  ASSERT_EQ(reparsed.sweeps.size(), 2u);
  EXPECT_EQ(reparsed.sweeps[0].key, "k");
  EXPECT_EQ(reparsed.sweeps[1].values,
            (std::vector<std::string>{"0.3", "0.5"}));
}

TEST(ExperimentSpec, ModelKeyParsesSweepsAndRoundTrips) {
  // model= selects the dynamics rule...
  ExperimentSpec spec = parse_spec({{"model", "weighted_median"}});
  EXPECT_EQ(spec.model.kind, ModelKind::weighted_median);
  // ...confidence= sets the HK bound...
  spec = parse_spec(
      {{"model", "hegselmann_krause"}, {"confidence", "0.35"}});
  EXPECT_EQ(spec.model.kind, ModelKind::hegselmann_krause);
  EXPECT_DOUBLE_EQ(spec.model.confidence, 0.35);

  // ...both round-trip through the spec-file serialisation...
  const std::string text = to_key_values(spec);
  const std::string path = ::testing::TempDir() + "opindyn_model.spec";
  {
    std::ofstream out(path);
    out << text;
  }
  const ExperimentSpec reparsed = parse_spec_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(to_key_values(reparsed), text);
  EXPECT_EQ(reparsed.model.kind, ModelKind::hegselmann_krause);
  EXPECT_DOUBLE_EQ(reparsed.model.confidence, 0.35);

  // ...and model is a legal sweep axis (not on the deny-list).
  ExperimentSpec sweepable;
  apply_override(sweepable, "model", "voter");
  EXPECT_EQ(sweepable.model.kind, ModelKind::voter);
  apply_override(sweepable, "confidence", "0.5");
  EXPECT_DOUBLE_EQ(sweepable.model.confidence, 0.5);
  sweepable.sweeps = parse_sweeps("model:node,edge,voter");
  EXPECT_EQ(expand_grid(sweepable).size(), 3u);
}

// Unknown model= and sampling= values fail with an edit-distance
// suggestion, like the scenario registry's unknown-name diagnostic.
TEST(ExperimentSpec, UnknownModelAndSamplingSuggestNearestName) {
  const auto expect_suggestion = [](const std::string& key,
                                    const std::string& value,
                                    const std::string& mention) {
    try {
      parse_spec({{key, value}});
      FAIL() << "expected rejection of " << key << "=" << value;
    } catch (const std::runtime_error& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(mention), std::string::npos) << what;
    }
  };
  expect_suggestion("model", "vooter", "did you mean 'voter'");
  expect_suggestion("model", "hegselman_krause",
                    "did you mean 'hegselmann_krause'");
  expect_suggestion("sampling", "wihtout", "did you mean 'without'");
}

TEST(ExperimentSpec, ParsesCliFlags) {
  const char* argv[] = {"opindyn",      "run",
                        "--scenario=edge", "--graph=complete",
                        "--n=32",       "--alpha=0.75",
                        "--replicas=7", "--sweep=k:1,2",
                        "--eps=1e-6",   "--csv=rows.csv"};
  const CliArgs args(10, argv);
  const ExperimentSpec spec = parse_spec(args);
  EXPECT_EQ(spec.scenario, "edge");
  EXPECT_EQ(spec.graph.family, "complete");
  EXPECT_EQ(spec.graph.n, 32);
  EXPECT_DOUBLE_EQ(spec.model.alpha, 0.75);
  EXPECT_EQ(spec.replicas, 7);
  EXPECT_DOUBLE_EQ(spec.convergence.epsilon, 1e-6);
  EXPECT_EQ(spec.csv_path, "rows.csv");
  ASSERT_EQ(spec.sweeps.size(), 1u);
  EXPECT_EQ(spec.sweeps[0].values, (std::vector<std::string>{"1", "2"}));
}

TEST(ExperimentSpec, RejectsUnknownKeysAndMalformedValues) {
  EXPECT_THROW(parse_spec({{"not-a-key", "1"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"n", "twelve"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"alpha", "0.5x"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"lazy", "maybe"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"sampling", "sometimes"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"center", "left"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"sweep", "novalues"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"replicas", "99999999999999999999999"}}),
               std::runtime_error);  // out of int64 range
  EXPECT_THROW(parse_spec({{"hist-bins", "0"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"quantiles", "0.5,1.5"}}), std::runtime_error);
  EXPECT_THROW(parse_spec({{"quantiles", "abc"}}), std::runtime_error);
  EXPECT_THROW(parse_spec_file("/nonexistent/path.spec"),
               std::runtime_error);
}

// Every malformed spec-file line produces a "path:line: ..." diagnostic
// naming the offending key -- never an uncaught std::invalid_argument
// (the ISSUE-3 CLI acceptance criterion).
TEST(ExperimentSpec, SpecFileErrorsCiteKeyAndLine) {
  const std::string path = ::testing::TempDir() + "opindyn_bad.spec";
  const auto expect_diagnostic = [&path](const std::string& contents,
                                         const std::string& line_tag,
                                         const std::string& mention) {
    {
      std::ofstream out(path);
      out << contents;
    }
    try {
      parse_spec_file(path);
      FAIL() << "expected std::runtime_error for: " << contents;
    } catch (const std::runtime_error& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(path + ":" + line_tag), std::string::npos)
          << what;
      EXPECT_NE(what.find(mention), std::string::npos) << what;
    }
    std::remove(path.c_str());
  };
  expect_diagnostic("scenario=node\nreplicas=12banana\n", "2", "replicas");
  expect_diagnostic("n=abc\n", "1", "'n'");
  expect_diagnostic("# comment\n\nfrobnicate=3\n", "3", "frobnicate");
  expect_diagnostic("scenario=node\nno equals sign here\n", "2",
                    "key=value");
  expect_diagnostic("eps=99999999999999999999999999999999999999e999999\n",
                    "1", "eps");

  // Duplicate keys: the last line wins, like CLI overrides.
  {
    std::ofstream out(path);
    out << "n=8\nn=32\n";
  }
  EXPECT_EQ(parse_spec_file(path).graph.n, 32);
  std::remove(path.c_str());
}

TEST(ExperimentSpec, HistogramKeysParseAndRoundTrip) {
  ExperimentSpec spec = parse_spec({{"hist-csv", "h.csv"},
                                    {"hist-column", "T_eps"},
                                    {"hist-bins", "12"},
                                    {"quantiles", "0.5,0.9,0.99"}});
  EXPECT_EQ(spec.hist_csv_path, "h.csv");
  EXPECT_EQ(spec.hist_column, "T_eps");
  EXPECT_EQ(spec.hist_bins, 12u);
  EXPECT_EQ(spec.quantiles, (std::vector<double>{0.5, 0.9, 0.99}));

  const std::string text = to_key_values(spec);
  const std::string path = ::testing::TempDir() + "opindyn_hist.spec";
  {
    std::ofstream out(path);
    out << text;
  }
  const ExperimentSpec reparsed = parse_spec_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(to_key_values(reparsed), text);
  EXPECT_EQ(reparsed.quantiles, spec.quantiles);

  // Orchestration/output keys cannot be swept.
  for (const std::string key :
       {"hist-csv", "hist-column", "hist-bins", "quantiles"}) {
    EXPECT_THROW(apply_override(spec, key, "x"), std::runtime_error)
        << key;
  }
}

TEST(ExperimentSpec, NewInitialDistributionsBuild) {
  GraphSpec graph;
  graph.family = "star";
  graph.n = 8;
  const Graph star = build_graph(graph);

  InitialSpec initial;
  initial.center = "none";
  initial.distribution = "hub_spike";
  const std::vector<double> spike = build_initial(initial, star);
  // The hub of a star carries the spike (value n by default), leaves 0.
  double sum = 0.0;
  double max_abs = 0.0;
  for (const double v : spike) {
    sum += v;
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_DOUBLE_EQ(max_abs, 8.0);
  EXPECT_DOUBLE_EQ(sum, 8.0);  // a single nonzero entry

  initial.distribution = "blocks";
  const std::vector<double> blocks = build_initial(initial, star);
  EXPECT_DOUBLE_EQ(blocks.front(), 1.0);
  EXPECT_DOUBLE_EQ(blocks.back(), -1.0);

  // f2_* are eigenvector starts scaled by n by default; they are
  // nonzero and, for the walk matrix, pi-orthogonal to the constant.
  graph.family = "cycle";
  const Graph cycle = build_graph(graph);
  initial.distribution = "f2_walk";
  const std::vector<double> f2 = build_initial(initial, cycle);
  double norm = 0.0;
  for (const double v : f2) {
    norm += v * v;
  }
  EXPECT_GT(norm, 1.0);
  initial.distribution = "f2_laplacian";
  EXPECT_EQ(build_initial(initial, cycle).size(), 8u);
}

TEST(ExperimentSpec, OverridesApplyAndOrchestrationKeysAreProtected) {
  ExperimentSpec spec;
  apply_override(spec, "k", "8");
  apply_override(spec, "alpha", "0.125");
  apply_override(spec, "graph", "star");
  apply_override(spec, "n", "48");
  apply_override(spec, "sampling", "with");
  EXPECT_EQ(spec.model.k, 8);
  EXPECT_DOUBLE_EQ(spec.model.alpha, 0.125);
  EXPECT_EQ(spec.graph.family, "star");
  EXPECT_EQ(spec.graph.n, 48);
  EXPECT_EQ(spec.model.sampling, SamplingMode::with_replacement);

  for (const std::string key :
       {"scenario", "sweep", "csv", "rows-csv", "table", "threads",
        "replicas", "seed"}) {
    EXPECT_THROW(apply_override(spec, key, "x"), std::runtime_error)
        << key;
  }
  EXPECT_THROW(apply_override(spec, "bogus", "1"), std::runtime_error);
}

TEST(ExperimentSpec, GraphCacheKeyTracksEveryGeneratorParameter) {
  GraphSpec a;
  GraphSpec b;
  EXPECT_EQ(graph_cache_key(a), graph_cache_key(b));
  b.n = a.n + 1;
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
  b = a;
  b.family = "torus";
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
  b = a;
  b.degree = 6;
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
  b = a;
  b.attach = 3;
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
  b = a;
  b.edge_probability = 0.25;
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
  b = a;
  b.seed = 77;
  EXPECT_NE(graph_cache_key(a), graph_cache_key(b));
}

TEST(ExperimentSpec, GridExpansionIsRowMajor) {
  ExperimentSpec spec;
  spec.sweeps = parse_sweeps("k:1,2;alpha:0.3,0.5,0.7");
  const std::vector<SweepPoint> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].overrides[0].second, "1");
  EXPECT_EQ(grid[0].overrides[1].second, "0.3");
  EXPECT_EQ(grid[1].overrides[1].second, "0.5");
  EXPECT_EQ(grid[3].overrides[0].second, "2");
  EXPECT_EQ(grid[5].overrides[1].second, "0.7");

  spec.sweeps.clear();
  EXPECT_EQ(expand_grid(spec).size(), 1u);
  EXPECT_TRUE(expand_grid(spec)[0].overrides.empty());
}

TEST(ExperimentSpec, BuildsGraphFamiliesAndInitialDistributions) {
  GraphSpec graph;
  graph.family = "hypercube";
  graph.n = 16;
  EXPECT_EQ(build_graph(graph).node_count(), 16);
  graph.family = "random_regular";
  graph.degree = 4;
  EXPECT_TRUE(build_graph(graph).is_regular());
  graph.family = "not_a_family";
  EXPECT_THROW(build_graph(graph), std::runtime_error);

  graph.family = "cycle";
  const Graph g = build_graph(graph);
  InitialSpec initial;
  initial.distribution = "rademacher";
  const std::vector<double> xi = build_initial(initial, g);
  ASSERT_EQ(xi.size(), 16u);
  double sum = 0.0;
  for (const double v : xi) {
    sum += v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);  // plain centering by default

  initial.distribution = "constant";
  initial.param_a = 2.5;
  initial.center = "none";
  EXPECT_DOUBLE_EQ(build_initial(initial, g)[7], 2.5);

  initial.distribution = "unknown";
  EXPECT_THROW(build_initial(initial, g), std::runtime_error);
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
