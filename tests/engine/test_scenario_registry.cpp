#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/engine/scenario.h"

namespace opindyn {
namespace engine {
namespace {

class FakeScenario : public Scenario {
 public:
  explicit FakeScenario(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string description() const override { return "fake"; }
  std::vector<std::string> columns() const override { return {"x"}; }
  CellFold start(const RunInput&) const override {
    return [] { return CellRows{{{"0"}}, {}}; };
  }

 private:
  std::string name_;
};

TEST(ScenarioRegistry, BuiltinsAreRegistered) {
  register_builtin_scenarios();
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const std::string name :
       {"node", "edge", "lazy", "node_vs_edge", "k_ablation", "voter",
        "gossip", "degroot", "friedkin_johnsen", "averaging_vs_voter",
        "gossip_vs_unilateral", "whp_tail", "thm22_convergence",
        "trajectory",
        // The generalized model family (cross_model honours model=).
        "cross_model", "weighted_median", "hegselmann_krause",
        // The paper-theorem scenarios (the ISSUE-3 bench ports).
        "duality", "martingale", "qchain", "thm22_variance",
        "thm24_edge_convergence", "thm24_edge_variance",
        "prop58_variance", "propB1_drop", "propB2_node", "propB2_edge"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.get(name).name(), name);
    EXPECT_FALSE(registry.get(name).description().empty()) << name;
    EXPECT_FALSE(registry.get(name).columns().empty()) << name;
  }
  // names() is sorted and covers every registered scenario.
  const std::vector<std::string> names = registry.names();
  EXPECT_GE(names.size(), 27u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  // The streaming scenarios declare per-replica row columns; the plain
  // aggregating ones do not.
  EXPECT_FALSE(registry.get("whp_tail").row_columns().empty());
  EXPECT_FALSE(registry.get("trajectory").row_columns().empty());
  EXPECT_FALSE(registry.get("thm22_variance").row_columns().empty());
  EXPECT_FALSE(registry.get("duality").row_columns().empty());
  EXPECT_FALSE(registry.get("cross_model").row_columns().empty());
  EXPECT_TRUE(registry.get("node").row_columns().empty());
  EXPECT_TRUE(registry.get("qchain").row_columns().empty());
}

TEST(ScenarioRegistry, UnknownScenarioErrorNamesTheKnownOnes) {
  register_builtin_scenarios();
  try {
    ScenarioRegistry::instance().get("no_such_scenario");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no_such_scenario"), std::string::npos);
    EXPECT_NE(message.find("known:"), std::string::npos);
    EXPECT_NE(message.find("node_vs_edge"), std::string::npos);
  }
}

TEST(ScenarioRegistry, UnknownScenarioErrorSuggestsNearMatches) {
  register_builtin_scenarios();
  // A one-letter typo suggests the intended scenario...
  try {
    ScenarioRegistry::instance().get("vooter");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("did you mean 'voter'"), std::string::npos)
        << message;
  }
  // ...while a name unlike anything registered gets no suggestion.
  try {
    ScenarioRegistry::instance().get("zzzzzzzzzz");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()).find("did you mean"),
              std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicateRegistration) {
  ScenarioRegistry registry;
  registry.add(std::make_unique<FakeScenario>("dup"));
  EXPECT_TRUE(registry.contains("dup"));
  EXPECT_THROW(registry.add(std::make_unique<FakeScenario>("dup")),
               std::runtime_error);
  EXPECT_FALSE(registry.contains("other"));
  EXPECT_THROW(registry.get("other"), std::runtime_error);
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
