// The sink layer: CSV escaping and NaN formatting as rows pass through
// CsvSink, and the OrderedFlush contract -- cells may complete in any
// order, sinks always observe rows in cell order.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/engine/sinks.h"
#include "src/support/assert.h"

namespace opindyn {
namespace engine {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Sinks, CsvSinkQuotesSeparatorsAndFormatsNan) {
  const std::string path = ::testing::TempDir() + "opindyn_sink_quote.csv";
  CsvSink csv(path);
  csv.begin({"label", "value"});
  csv.row({"plain", "1.5"});
  csv.row({"comma, inside", "2"});
  csv.row({"quote \" inside", "3"});
  csv.row({"newline\ninside", "4"});
  // Scenario number formatting passes NaN through as "nan" (and the
  // engine's fold layer uses NaN only as the no-sample marker, so a
  // "nan" cell in a CSV is always an intentional value).
  std::ostringstream nan_text;
  nan_text << std::nan("");
  csv.row({"missing", nan_text.str()});
  csv.finish();

  const std::string contents = read_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(contents,
            "label,value\n"
            "plain,1.5\n"
            "\"comma, inside\",2\n"
            "\"quote \"\" inside\",3\n"
            "\"newline\ninside\",4\n"
            "missing,nan\n");
}

// The silent-failure bugfix: file sinks open their paths at
// construction, so an unopenable --csv / --hist-csv path fails
// immediately with the path in the message -- never a full batch run
// followed by no output and exit 0.
TEST(Sinks, CsvSinkFailsAtConstructionForUnopenablePath) {
  const std::string path =
      ::testing::TempDir() + "missing_dir/out.csv";
  try {
    CsvSink sink(path);
    FAIL() << "construction must throw for an unopenable path";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << error.what();
  }
}

TEST(Sinks, HistogramSinkFailsAtConstructionForUnopenablePath) {
  HistogramSink::Options options;
  options.csv_path = ::testing::TempDir() + "missing_dir/hist.csv";
  try {
    HistogramSink sink(std::move(options));
    FAIL() << "construction must throw for an unopenable path";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("missing_dir/hist.csv"),
              std::string::npos)
        << error.what();
  }
}

// The construction-time check must be a PROBE, not a truncating open:
// when a run fails after validation (a scenario contract throw
// mid-batch), the previous run's bins must survive -- the file is only
// rewritten inside finish().
TEST(Sinks, HistogramSinkPreservesExistingFileUntilFinish) {
  const std::string path =
      ::testing::TempDir() + "opindyn_hist_keep.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "bin_lo,bin_hi,count\n0,1,7\n";
  }
  {
    HistogramSink::Options options;
    options.csv_path = path;
    HistogramSink sink(std::move(options));
    sink.begin({"value"});
    sink.row({"1.5"});
    // No finish(): the batch "failed" -- the old bins must remain.
  }
  EXPECT_EQ(read_file(path), "bin_lo,bin_hi,count\n0,1,7\n");
  std::remove(path.c_str());
}

TEST(Sinks, HistogramSinkRejectsNonFiniteCells) {
  HistogramSink::Options options;
  options.column = "value";
  HistogramSink sink(std::move(options));
  sink.begin({"replica", "value"});
  sink.row({"0", "1.5"});
  EXPECT_THROW(sink.row({"1", "nan"}), std::runtime_error);
  EXPECT_THROW(sink.row({"2", "inf"}), std::runtime_error);
  try {
    sink.row({"3", "-nan"});
    FAIL() << "a NaN cell must be rejected, not binned";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("value"), std::string::npos)
        << "the diagnostic must name the column: " << error.what();
  }
}

TEST(Sinks, OrderedFlushReleasesRowsInCellOrder) {
  MemorySink memory;
  OrderedFlush flush({&memory}, 4);
  flush.begin({"c"});

  // Cells arrive out of order: 2, 0, 3, 1.
  flush.cell_done(2, {{"cell2"}});
  EXPECT_EQ(flush.flushed_cells(), 0u);
  EXPECT_TRUE(memory.rows().empty());

  flush.cell_done(0, {{"cell0a"}, {"cell0b"}});
  EXPECT_EQ(flush.flushed_cells(), 1u);  // 1 flushed, 2 still waits on 1
  ASSERT_EQ(memory.rows().size(), 2u);
  EXPECT_EQ(memory.rows()[0][0], "cell0a");

  flush.cell_done(3, {});  // empty row blocks are fine
  EXPECT_EQ(flush.flushed_cells(), 1u);

  flush.cell_done(1, {{"cell1"}});  // releases 1, 2 and the empty 3
  EXPECT_EQ(flush.flushed_cells(), 4u);
  flush.finish();

  ASSERT_EQ(memory.rows().size(), 4u);
  EXPECT_EQ(memory.rows()[1][0], "cell0b");
  EXPECT_EQ(memory.rows()[2][0], "cell1");
  EXPECT_EQ(memory.rows()[3][0], "cell2");
  EXPECT_EQ(flush.flushed_rows(), 4);
}

TEST(Sinks, OrderedFlushSurvivesConcurrentCompletion) {
  // Hammer the flush from many threads delivering disjoint cells; the
  // sink must still observe rows in exact cell order.
  constexpr std::size_t kCells = 64;
  MemorySink memory;
  OrderedFlush flush({&memory}, kCells);
  flush.begin({"c"});

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 8; ++w) {
    workers.emplace_back([&flush, w] {
      // Worker w delivers cells w, w+8, w+16, ... in reverse.
      for (std::size_t cell = kCells - 8 + w; cell < kCells; cell -= 8) {
        flush.cell_done(cell, {{std::to_string(cell)}});
        if (cell < 8) {
          break;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  flush.finish();

  ASSERT_EQ(memory.rows().size(), kCells);
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    EXPECT_EQ(memory.rows()[cell][0], std::to_string(cell));
  }
}

TEST(Sinks, OrderedFlushRejectsContractViolations) {
  MemorySink memory;
  OrderedFlush flush({&memory}, 2);
  flush.begin({"c"});
  flush.cell_done(0, {{"x"}});
  EXPECT_THROW(flush.cell_done(0, {{"again"}}), ContractError);
  EXPECT_THROW(flush.cell_done(2, {{"range"}}), ContractError);
  EXPECT_THROW(flush.finish(), ContractError);  // cell 1 never arrived
  flush.cell_done(1, {});
  flush.finish();
  EXPECT_EQ(memory.rows().size(), 1u);
}

}  // namespace
}  // namespace engine
}  // namespace opindyn
