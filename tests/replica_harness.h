// Shared test helper: run R eps-converged replicas of a configured
// model on the engine's CellScheduler and fold F / T_eps / divergence.
// Replica r draws from Rng::fork(seed, r) -- the same stream assignment
// the retired core/montecarlo harness used, so tests ported onto this
// helper keep their statistical expectations unchanged.
#ifndef OPINDYN_TESTS_REPLICA_HARNESS_H
#define OPINDYN_TESTS_REPLICA_HARNESS_H

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/support/cell_scheduler.h"
#include "src/support/stats.h"

namespace opindyn {
namespace test_support {

struct ReplicaSummary {
  RunningStats value;
  RunningStats steps;
  std::int64_t diverged = 0;
};

inline ReplicaSummary run_replicas(const Graph& g,
                                   const ModelConfig& config,
                                   const std::vector<double>& xi,
                                   std::int64_t replicas,
                                   std::uint64_t seed,
                                   const ConvergenceOptions& convergence,
                                   std::size_t threads = 0) {
  CellScheduler scheduler(threads);
  const std::vector<RunningStats> stats = scheduler.run(
      replicas, seed, 3,
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(g, config, xi);
        const ConvergenceResult res =
            run_until_converged(*process, rng, convergence);
        out[0] = res.final_value;
        out[1] = static_cast<double>(res.steps);
        out[2] = res.converged ? 0.0 : 1.0;
      });
  return {stats[0], stats[1],
          static_cast<std::int64_t>(std::llround(stats[2].sum()))};
}

}  // namespace test_support
}  // namespace opindyn

#endif  // OPINDYN_TESTS_REPLICA_HARNESS_H
