// Randomized invariant fuzzing: random connected graphs, random model
// parameters, random initial values -- the library's structural
// invariants must hold on every draw.  Catches representation bugs the
// curated tests might miss.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/diffusion.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

Graph random_connected_graph(Rng& rng) {
  const auto pick = rng.next_below(5);
  const auto n = static_cast<NodeId>(6 + rng.next_below(18));
  switch (pick) {
    case 0:
      return gen::erdos_renyi_connected(rng, n, 0.35);
    case 1: {
      const NodeId d = 3 + static_cast<NodeId>(rng.next_below(2));
      const NodeId even_n = (n * d) % 2 == 0 ? n : static_cast<NodeId>(n + 1);
      return gen::random_regular(rng, even_n, d);
    }
    case 2:
      return gen::preferential_attachment(rng, n, 2);
    case 3:
      return gen::lollipop(static_cast<NodeId>(3 + rng.next_below(4)),
                           static_cast<NodeId>(1 + rng.next_below(5)));
    default:
      return gen::cycle(n);
  }
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, GraphRepresentationInvariants) {
  Rng rng(GetParam());
  const Graph g = random_connected_graph(rng);
  ASSERT_TRUE(is_connected(g));
  // Degree sum = 2m; arcs mirror edges; stationary sums to 1.
  std::int64_t degree_sum = 0;
  double pi_sum = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    degree_sum += g.degree(u);
    pi_sum += g.stationary(u);
    for (const NodeId v : g.neighbors(u)) {
      ASSERT_TRUE(g.has_edge(v, u));
      ASSERT_NE(u, v);
    }
  }
  EXPECT_EQ(degree_sum, g.arc_count());
  EXPECT_NEAR(pi_sum, 1.0, 1e-12);
  for (ArcId j = 0; j < g.arc_count(); ++j) {
    ASSERT_TRUE(g.has_edge(g.arc_source(j), g.arc_target(j)));
  }
  // Edge-list round trip preserves the graph.
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph parsed = read_edge_list(buffer);
  ASSERT_EQ(parsed.edge_count(), g.edge_count());
  for (const auto& [u, v] : g.undirected_edges()) {
    ASSERT_TRUE(parsed.has_edge(u, v));
  }
}

TEST_P(FuzzSweep, ProcessInvariants) {
  Rng rng(GetParam() + 1000);
  const Graph g = random_connected_graph(rng);
  const double alpha = rng.next_double(0.05, 0.95);
  const auto k = static_cast<std::int64_t>(
      1 + rng.next_below(static_cast<std::uint64_t>(g.min_degree())));
  auto xi = initial::gaussian(rng, g.node_count(), 0.0, 2.0);

  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  params.track_extrema = true;
  NodeModel model(g, xi, params);
  const double lo0 = model.state().min_value();
  const double hi0 = model.state().max_value();
  double previous_k = model.state().discrepancy();
  for (int t = 0; t < 3000; ++t) {
    model.step(rng);
    // Convex-hull confinement and monotone discrepancy.
    ASSERT_GE(model.state().min_value(), lo0 - 1e-12);
    ASSERT_LE(model.state().max_value(), hi0 + 1e-12);
    const double k_now = model.state().discrepancy();
    ASSERT_LE(k_now, previous_k + 1e-12);
    previous_k = k_now;
  }
  // Incremental accumulators agree with recomputation.
  const double phi_inc = model.state().phi();
  model.mutable_state().recompute();
  EXPECT_NEAR(model.state().phi(), phi_inc, 1e-8);
}

TEST_P(FuzzSweep, DualityOnRandomConfigurations) {
  Rng rng(GetParam() + 2000);
  const Graph g = random_connected_graph(rng);
  const double alpha = rng.next_double(0.05, 0.95);
  const auto k = static_cast<std::int64_t>(
      1 + rng.next_below(static_cast<std::uint64_t>(g.min_degree())));
  Rng init_rng(GetParam() + 3000);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 3.0);
  const auto steps = static_cast<std::int64_t>(20 + rng.next_below(200));
  const DualityCheck check =
      run_averaging_and_dual(g, xi, alpha, k, steps, GetParam() + 4000);
  EXPECT_LT(check.max_difference, 1e-9)
      << g.name() << " alpha=" << alpha << " k=" << k
      << " steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace opindyn
