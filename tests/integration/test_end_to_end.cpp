// Cross-module integration properties: convergence times against the
// spectral bounds, the Theta(||xi||^2/n^2) variance envelope end-to-end,
// laziness scaling, and the voter-model limit alpha = 0.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/theory.h"
#include "src/graph/generators.h"
#include "src/spectral/spectra.h"
#include "src/support/stats.h"
#include "tests/replica_harness.h"

namespace opindyn {
namespace {

using test_support::ReplicaSummary;
using test_support::run_replicas;

TEST(EndToEnd, NodeModelConvergenceScalesWithSpectralBound) {
  // Measured T_eps should be within a constant factor of the predicted
  // steps from the exact per-step contraction (Prop. B.1).
  Rng graph_rng(1);
  for (const auto& g : {gen::cycle(24), gen::complete(24),
                        gen::random_regular(graph_rng, 24, 4)}) {
    const auto spec = lazy_walk_spectrum(g);
    Rng init_rng(2);
    auto xi = initial::rademacher(init_rng, g.node_count());
    initial::center_plain(xi);

    ModelConfig config;
    config.alpha = 0.5;
    config.k = 1;
    config.lazy = true;  // the variant Prop. B.1 is stated for
    ConvergenceOptions convergence;
    convergence.epsilon = 1e-8;
    const ReplicaSummary result =
        run_replicas(g, config, xi, 40, 3, convergence);
    ASSERT_EQ(result.diverged, 0) << g.name();

    OpinionState probe(g, xi);
    const double rho = theory::node_model_rho(spec.lambda2, 0.5, 1,
                                              g.node_count(), true);
    const double predicted =
        theory::steps_to_epsilon(rho, probe.phi_exact(), 1e-8);
    const double ratio = result.steps.mean() / predicted;
    EXPECT_GT(ratio, 0.05) << g.name();
    EXPECT_LT(ratio, 3.0) << g.name();  // bound is an upper bound
  }
}

TEST(EndToEnd, EdgeModelConvergenceScalesWithLaplacianBound) {
  for (const auto& g : {gen::star(16), gen::barbell(6, 2)}) {
    const double lambda2 = laplacian_spectrum(g).lambda2;
    Rng init_rng(4);
    auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
    initial::center_plain(xi);

    ModelConfig config;
    config.kind = ModelKind::edge;
    config.alpha = 0.5;
    ConvergenceOptions convergence;
    convergence.epsilon = 1e-8;
    convergence.use_plain_potential = true;
    const ReplicaSummary result =
        run_replicas(g, config, xi, 40, 5, convergence);
    ASSERT_EQ(result.diverged, 0) << g.name();

    OpinionState probe(g, xi);
    const double rho =
        theory::edge_model_rho(lambda2, 0.5, g.edge_count(), false);
    const double predicted =
        theory::steps_to_epsilon(rho, probe.phi_plain_exact(), 1e-8);
    const double ratio = result.steps.mean() / predicted;
    EXPECT_GT(ratio, 0.05) << g.name();
    EXPECT_LT(ratio, 3.0) << g.name();
  }
}

TEST(EndToEnd, LazinessRoughlyDoublesConvergenceTime) {
  const Graph g = gen::complete(16);
  Rng init_rng(6);
  auto xi = initial::rademacher(init_rng, 16);
  initial::center_plain(xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-8;
  const ReplicaSummary fast = run_replicas(g, config, xi, 200, 7,
                                           convergence);
  config.lazy = true;
  const ReplicaSummary lazy = run_replicas(g, config, xi, 200, 7,
                                           convergence);
  const double ratio = lazy.steps.mean() / fast.steps.mean();
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

TEST(EndToEnd, VarianceEnvelopeHoldsAcrossGraphFamiliesAndK) {
  // Theorem 2.2(2) end to end: n^2 Var(F)/||xi||^2 lands in a narrow
  // band regardless of graph family or k.
  Rng graph_rng(8);
  struct Case {
    Graph graph;
    std::int64_t k;
  };
  std::vector<Case> cases;
  cases.push_back({gen::cycle(16), 1});
  cases.push_back({gen::cycle(16), 2});
  cases.push_back({gen::complete(16), 1});
  cases.push_back({gen::complete(16), 8});
  cases.push_back({gen::random_regular(graph_rng, 16, 4), 3});

  Rng init_rng(9);
  auto xi = initial::rademacher(init_rng, 16);
  initial::center_plain(xi);
  const double norm = initial::l2_squared(xi);

  for (const auto& c : cases) {
    ModelConfig config;
    config.alpha = 0.5;
    config.k = c.k;
    ConvergenceOptions convergence;
    convergence.epsilon = 1e-13;
    const ReplicaSummary result =
        run_replicas(c.graph, config, xi, 6000, 10, convergence);
    const double scaled =
        result.value.population_variance() * 16.0 * 16.0 / norm;
    EXPECT_GT(scaled, 0.2) << c.graph.name() << " k=" << c.k;
    EXPECT_LT(scaled, 3.0) << c.graph.name() << " k=" << c.k;
    // And the exact Prop 5.8 prediction is inside the MC error bars.
    const double predicted =
        theory::variance_exact(c.graph, 0.5, c.k, xi);
    EXPECT_NEAR(result.value.population_variance(), predicted,
                5.0 * result.value.variance_ci_halfwidth() + 2e-4)
        << c.graph.name() << " k=" << c.k;
  }
}

TEST(EndToEnd, AlphaZeroK1IsNumericVoterModel) {
  // With alpha = 0, k = 1 the NodeModel copies neighbour values, so F is
  // always one of the initial values.
  const Graph g = gen::complete(8);
  std::vector<double> xi{10, 20, 30, 40, 50, 60, 70, 80};
  NodeModelParams params;
  params.alpha = 0.0;
  params.k = 1;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    NodeModel model(g, xi, params);
    Rng rng(seed + 31);
    ConvergenceOptions options;
    options.epsilon = 1e-18;
    const ConvergenceResult result = run_until_converged(model, rng, options);
    ASSERT_TRUE(result.converged);
    bool is_initial_value = false;
    for (const double v : xi) {
      is_initial_value = is_initial_value ||
                         std::abs(result.final_value - v) < 1e-9;
    }
    EXPECT_TRUE(is_initial_value) << result.final_value;
  }
}

TEST(EndToEnd, KHasNegligibleEffectOnVariance) {
  // The "surprising" claim of Theorem 2.2(2): Var(F) barely moves with k.
  const Graph g = gen::complete(12);
  Rng init_rng(11);
  auto xi = initial::rademacher(init_rng, 12);
  initial::center_plain(xi);
  std::vector<double> variances;
  for (const std::int64_t k : {1, 4, 11}) {
    const double v = theory::variance_exact(g, 0.5, k, xi);
    variances.push_back(v);
  }
  // "Negligible" in the theorem means within the Theta constants: the
  // exact k = 1 -> k = d ratio at alpha = 1/2 is ~2.7 (see the envelope
  // coefficients), never more.
  for (const double v : variances) {
    EXPECT_LT(v / variances.front(), 4.0);
    EXPECT_GT(v / variances.front(), 0.25);
  }
}

}  // namespace
}  // namespace opindyn
