// Social-network scenario from the paper's introduction: individuals on a
// heavy-tailed (preferential-attachment) friendship graph deciding "how
// much should I budget for this year's vacation?".  Each person starts
// with a private estimate; at random moments someone checks a few
// friends' numbers and nudges their own (the NodeModel with unilateral
// updates -- a "specialist" influences you without being influenced
// back).
//
// The example tracks the opinion spread over time, shows influencers
// (high-degree nodes) pulling the consensus toward *their* initial
// opinions -- E[F] is the degree-weighted average, not the plain one --
// and renders the trajectory as an ASCII figure.
//
//   ./example_social_opinion [--n=200] [--alpha=0.7] [--k=3]
#include <algorithm>
#include <iostream>

#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/ascii_plot.h"
#include "src/support/cli.h"
#include "src/support/table.h"

using namespace opindyn;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get("n", std::int64_t{200}));
  const double alpha = args.get("alpha", 0.7);
  const std::int64_t k = args.get("k", std::int64_t{3});

  Rng graph_rng(11);
  const Graph network = gen::preferential_attachment(graph_rng, n, 3);
  std::cout << "friendship network: " << network.name()
            << ", max degree = " << network.max_degree()
            << ", min degree = " << network.min_degree() << "\n";

  // Most people budget around $1500; a handful of well-connected
  // frequent travellers (the top-degree nodes) insist on $4000.
  Rng init_rng(13);
  auto budget = initial::gaussian(init_rng, n, 1500.0, 200.0);
  std::vector<NodeId> by_degree(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    by_degree[static_cast<std::size_t>(u)] = u;
  }
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    return network.degree(a) > network.degree(b);
  });
  for (int i = 0; i < 5; ++i) {
    budget[static_cast<std::size_t>(by_degree[static_cast<std::size_t>(i)])] =
        4000.0;
  }

  const double plain_avg = [&] {
    double s = 0.0;
    for (const double v : budget) {
      s += v;
    }
    return s / static_cast<double>(n);
  }();
  const double influencer_weighted = degree_weighted_average(network, budget);
  std::cout << "plain average of initial budgets:            $" << plain_avg
            << "\n";
  std::cout << "degree-weighted average (influencer-skewed): $"
            << influencer_weighted << "  <- E[F], Lemma 4.1\n\n";

  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  params.track_extrema = true;
  NodeModel process(network, budget, params);
  Rng rng(17);

  Table timeline({"updates/person", "min budget", "mean budget",
                  "max budget", "spread (K)"});
  Series spread_series;
  spread_series.label = "opinion spread K(t)";
  spread_series.marker = '*';
  const std::int64_t rounds = 400;
  for (std::int64_t round = 0; round <= rounds; ++round) {
    if (round % 50 == 0) {
      timeline.new_row()
          .add_fixed(static_cast<double>(process.time()) /
                         static_cast<double>(n),
                     1)
          .add_fixed(process.state().min_value(), 0)
          .add_fixed(process.state().average(), 0)
          .add_fixed(process.state().max_value(), 0)
          .add_fixed(process.state().discrepancy(), 1);
    }
    spread_series.x.push_back(static_cast<double>(process.time()));
    spread_series.y.push_back(process.state().discrepancy());
    for (NodeId i = 0; i < n; ++i) {
      process.step(rng);
    }
  }
  std::cout << timeline.to_markdown() << "\n";

  PlotOptions plot;
  plot.title = "Opinion spread K(t) = max - min budget (log y)";
  plot.x_label = "steps";
  plot.y_label = "K";
  plot.log_y = true;
  plot.height = 14;
  std::cout << ascii_plot({spread_series}, plot) << "\n";

  std::cout << "final consensus: $" << process.state().average()
            << "  (started at plain avg $" << plain_avg
            << "; influencers pulled it toward $" << influencer_weighted
            << ")\n";
  return 0;
}
