// Distributed-averaging scenario: a field of cheap sensors on a wireless
// mesh (modelled as a random 4-regular graph) each measure a noisy
// temperature.  They want the *network-wide average* (the best estimate
// of the true temperature) but can only do unilateral gossip pulls --
// the EdgeModel.  Theorem 2.4 says the consensus F satisfies E[F] =
// initial average with s.d. Theta(||xi||/n), so the protocol is a valid
// distributed estimator; this example measures that accuracy over many
// deployments and compares against the theory.
//
//   ./example_sensor_average [--n=64] [--replicas=2000] [--alpha=0.5]
#include <cmath>
#include <iostream>
#include <span>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/theory.h"
#include "src/graph/generators.h"
#include "src/support/cell_scheduler.h"
#include "src/support/cli.h"
#include "src/support/histogram.h"
#include "src/support/table.h"

using namespace opindyn;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get("n", std::int64_t{64}));
  const std::int64_t replicas = args.get("replicas", std::int64_t{2000});
  const double alpha = args.get("alpha", 0.5);

  Rng graph_rng(21);
  const Graph mesh = gen::random_regular(graph_rng, n, 4);
  std::cout << "sensor mesh: " << mesh.name() << "\n";

  // True temperature 20 C; each sensor reads with N(0, 0.5^2) noise.
  const double true_temperature = 20.0;
  Rng noise_rng(23);
  const auto readings =
      initial::gaussian(noise_rng, n, true_temperature, 0.5);
  double initial_avg = 0.0;
  for (const double r : readings) {
    initial_avg += r;
  }
  initial_avg /= static_cast<double>(n);
  std::cout << "initial average reading = " << initial_avg
            << " C (true = " << true_temperature << " C)\n\n";

  ModelConfig config;
  config.kind = ModelKind::edge;
  config.alpha = alpha;
  // Each deployment is one replica on the shared CellScheduler (stream
  // Rng::fork(29, r), the same streams the retired monte_carlo harness
  // used): metric 0 = the consensus F, metric 1 = T_eps.
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-12;
  convergence.use_plain_potential = true;
  CellScheduler scheduler;
  const auto stats = scheduler.run(
      replicas, 29, 2,
      [&mesh, &config, &readings, &convergence](
          std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(mesh, config, readings);
        const ConvergenceResult one =
            run_until_converged(*process, rng, convergence);
        out[0] = one.final_value;
        out[1] = static_cast<double>(one.steps);
      });
  const RunningStats& value = stats[0];
  const RunningStats& steps = stats[1];

  // Theory: Var(F) around the initial average (regular graph; EdgeModel =
  // NodeModel k = 1).
  auto centered = readings;
  initial::center_plain(centered);
  const double predicted_var =
      theory::variance_exact(mesh, alpha, 1, centered);

  Table table({"quantity", "value"});
  table.new_row().add("replicas").add(value.count());
  table.new_row().add("mean F").add_fixed(value.mean(), 5);
  table.new_row().add("initial average").add_fixed(initial_avg, 5);
  table.new_row()
      .add("|bias|")
      .add_sci(std::abs(value.mean() - initial_avg), 2);
  table.new_row()
      .add("Var(F) measured")
      .add_sci(value.population_variance(), 3);
  table.new_row().add("Var(F) predicted (Prop 5.8)").add_sci(predicted_var,
                                                             3);
  table.new_row()
      .add("protocol error s.d.")
      .add_sci(value.stddev(), 2);
  table.new_row()
      .add("sensor noise s.d. / sqrt(n) (ideal estimator)")
      .add_sci(0.5 / std::sqrt(static_cast<double>(n)), 2);
  table.new_row()
      .add("mean steps to converge")
      .add_fixed(steps.mean(), 0);
  std::cout << table.to_markdown() << "\n";

  Histogram histogram(initial_avg - 0.2, initial_avg + 0.2, 20);
  // Re-run a few replicas just to fill the histogram of F.
  for (int r = 0; r < 400; ++r) {
    Rng rng = Rng::fork(31, static_cast<std::uint64_t>(r));
    auto process = make_process(mesh, config, readings);
    ConvergenceOptions conv;
    conv.epsilon = 1e-12;
    conv.use_plain_potential = true;
    const ConvergenceResult one = run_until_converged(*process, rng, conv);
    histogram.add(one.final_value);
  }
  std::cout << "distribution of F across deployments:\n"
            << histogram.render(40) << "\n";
  std::cout << "Conclusion: the unilateral protocol estimates the initial "
               "average with s.d. ~ "
            << value.stddev()
            << " -- the 'price of simplicity' is modest and shrinks "
               "as 1/n.\n";
  return 0;
}
