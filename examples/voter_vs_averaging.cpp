// Head-to-head of three consensus protocols on the same graph:
//   1. the discrete voter model (a node copies a random neighbour),
//   2. the NodeModel averaging process of the paper,
//   3. coordinated pairwise gossip (both endpoints average -- stronger
//      communication, exact average).
// Shows the trade-off triangle: speed, accuracy of the consensus value,
// and the coordination requirement.
//
//   ./example_voter_vs_averaging [--n=64] [--graph=complete|cycle]
//                                [--trials=25]
#include <cmath>
#include <iostream>

#include "src/core/convergence.h"
#include "src/core/gossip_model.h"
#include "src/core/voter_model.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/generators.h"
#include "src/support/cli.h"
#include "src/support/stats.h"
#include "src/support/table.h"

using namespace opindyn;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get("n", std::int64_t{64}));
  const std::string family = args.get("graph", std::string("complete"));
  const int trials = static_cast<int>(args.get("trials", std::int64_t{25}));

  const Graph g =
      family == "cycle" ? gen::cycle(n) : gen::complete(n);
  std::cout << "arena: " << g.name() << ", " << trials
            << " independent trials per protocol\n\n";

  // Everyone holds a numeric opinion 0..9 (discretised for the voter).
  Rng init_rng(3);
  std::vector<double> xi(static_cast<std::size_t>(n));
  std::vector<int> discrete(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < xi.size(); ++i) {
    discrete[i] = static_cast<int>(init_rng.next_below(10));
    xi[i] = static_cast<double>(discrete[i]);
  }
  double avg0 = 0.0;
  for (const double v : xi) {
    avg0 += v;
  }
  avg0 /= static_cast<double>(n);
  const double eps = 1.0 / (static_cast<double>(n) * static_cast<double>(n));

  RunningStats voter_steps;
  RunningStats voter_value;
  RunningStats node_steps;
  RunningStats node_value;
  RunningStats gossip_steps;
  RunningStats gossip_value;

  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(t) + 100;
    {
      Rng rng(seed);
      const auto r = run_voter_to_consensus(g, discrete, rng, 500'000'000);
      if (r.reached_consensus) {
        voter_steps.add(static_cast<double>(r.steps));
        voter_value.add(static_cast<double>(r.winning_opinion));
      }
    }
    {
      Rng rng(seed);
      NodeModelParams params;
      params.alpha = 0.5;
      params.k = 1;
      NodeModel model(g, xi, params);
      ConvergenceOptions options;
      options.epsilon = eps;
      const auto r = run_until_converged(model, rng, options);
      node_steps.add(static_cast<double>(r.steps));
      node_value.add(r.final_value);
    }
    {
      Rng rng(seed);
      const auto r = run_gossip_to_convergence(g, xi, rng, eps, 500'000'000);
      gossip_steps.add(static_cast<double>(r.steps));
      gossip_value.add(r.final_value);
    }
  }

  Table table({"protocol", "mean steps", "mean consensus value",
               "sd of consensus value", "|E[value] - Avg(0)|",
               "coordination"});
  auto emit = [&](const char* name, const RunningStats& steps,
                  const RunningStats& value, const char* coordination) {
    table.new_row()
        .add(name)
        .add_fixed(steps.mean(), 0)
        .add_fixed(value.mean(), 3)
        .add_fixed(value.stddev(), 3)
        .add_fixed(std::abs(value.mean() - avg0), 3)
        .add(coordination);
  };
  emit("voter (discrete copy)", voter_steps, voter_value, "none");
  emit("NodeModel (averaging)", node_steps, node_value, "none");
  emit("pairwise gossip", gossip_steps, gossip_value, "2-node sync");
  std::cout << table.to_markdown() << "\n";
  std::cout << "Avg(0) = " << avg0 << "\n\n";
  std::cout
      << "Reading: averaging converges orders of magnitude faster than "
         "voting and lands within Theta(||xi||/n) of the true average; "
         "gossip nails the average exactly but requires coordinated "
         "two-node updates (the stronger model the paper contrasts).\n";
  return 0;
}
