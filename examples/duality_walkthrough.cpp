// Interactive walkthrough of the paper's central proof device: the
// duality between the Averaging Process and the time-reversed Diffusion
// Process (Section 5, Figures 1 and 4).  Runs a random selection
// sequence on a user-chosen graph, prints both end states side by side,
// and demonstrates that reversal is essential by also running the
// diffusion *forward* (which disagrees).
//
//   ./example_duality_walkthrough [--n=8] [--alpha=0.5] [--k=2]
//                                 [--steps=25] [--seed=1]
#include <cmath>
#include <iostream>

#include "src/core/diffusion.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/generators.h"
#include "src/support/cli.h"
#include "src/support/table.h"

using namespace opindyn;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get("n", std::int64_t{8}));
  const double alpha = args.get("alpha", 0.5);
  const std::int64_t k = args.get("k", std::int64_t{2});
  const std::int64_t steps = args.get("steps", std::int64_t{25});
  const auto seed =
      static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));

  const Graph g = gen::cycle(n);
  Rng init_rng(5);
  const auto xi0 = initial::uniform(init_rng, n, 0.0, 10.0);

  std::cout << "Running the NodeModel on " << g.name() << " for " << steps
            << " steps (alpha = " << alpha << ", k = " << k
            << "), recording the selection sequence chi...\n\n";

  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  NodeModel averaging(g, xi0, params);
  Rng rng(seed);
  SelectionSequence chi;
  for (std::int64_t t = 0; t < steps; ++t) {
    chi.push_back(averaging.step_recorded(rng));
  }
  std::cout << "Sample of chi (first 5 selections):\n";
  for (std::size_t t = 0; t < std::min<std::size_t>(5, chi.size()); ++t) {
    std::cout << "  chi(" << t + 1 << ") = (u = " << chi[t].node << ", S = {";
    for (std::size_t i = 0; i < chi[t].sample.size(); ++i) {
      std::cout << (i > 0 ? ", " : "") << chi[t].sample[i];
    }
    std::cout << "})\n";
  }

  DiffusionProcess reversed(g, alpha);
  reversed.apply_reversed(chi);
  const auto w_reversed = reversed.costs(xi0);

  DiffusionProcess forward(g, alpha);
  forward.apply_sequence(chi);
  const auto w_forward = forward.costs(xi0);

  Table table({"node", "xi(T) averaging", "W(T) dual (reversed chi)",
               "W(T) forward chi (wrong)"});
  double max_dual = 0.0;
  double max_forward = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const double a = averaging.state().value(u);
    max_dual = std::max(max_dual,
                        std::abs(a - w_reversed[static_cast<std::size_t>(u)]));
    max_forward = std::max(
        max_forward, std::abs(a - w_forward[static_cast<std::size_t>(u)]));
    table.new_row()
        .add(static_cast<std::int64_t>(u))
        .add(a, 8)
        .add(w_reversed[static_cast<std::size_t>(u)], 8)
        .add(w_forward[static_cast<std::size_t>(u)], 8);
  }
  std::cout << "\n" << table.to_markdown() << "\n";
  std::cout << "max |xi - W| with reversed chi: " << max_dual
            << "   (Proposition 5.1: identical)\n";
  std::cout << "max |xi - W| with forward chi:  " << max_forward
            << "   (reversal is essential)\n";
  return max_dual < 1e-9 ? 0 : 1;
}
