// Quickstart: build a graph, run the NodeModel to eps-convergence, and
// compare the consensus value F with the (degree-weighted) initial
// average the theory predicts.
//
//   ./example_quickstart [--n=64] [--alpha=0.5] [--k=2] [--eps=1e-10]
//                        [--graph=cycle|complete|torus|random_regular]
#include <cmath>
#include <iostream>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/cli.h"

using namespace opindyn;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get("n", std::int64_t{64}));
  const double alpha = args.get("alpha", 0.5);
  const std::int64_t k = args.get("k", std::int64_t{2});
  const double eps = args.get("eps", 1e-10);
  const std::string family = args.get("graph", std::string("torus"));

  Rng graph_rng(args.get("seed", std::int64_t{42}) >= 0
                    ? static_cast<std::uint64_t>(
                          args.get("seed", std::int64_t{42}))
                    : 42);
  Graph graph = family == "cycle"      ? gen::cycle(n)
                : family == "complete" ? gen::complete(n)
                : family == "torus"
                    ? gen::torus(static_cast<NodeId>(8),
                                 static_cast<NodeId>(n / 8))
                    : gen::random_regular(graph_rng, n, 4);

  std::cout << "graph: " << graph.name() << " (n = " << graph.node_count()
            << ", m = " << graph.edge_count() << ")\n";

  // Everyone starts with a uniformly random opinion in [0, 100].
  Rng init_rng(7);
  const auto xi0 =
      initial::uniform(init_rng, graph.node_count(), 0.0, 100.0);
  const double weighted_avg0 = degree_weighted_average(graph, xi0);

  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  NodeModel process(graph, xi0, params);

  std::cout << "initial degree-weighted average M(0) = " << weighted_avg0
            << "  (E[F] by Lemma 4.1)\n";
  std::cout << "running NodeModel(alpha = " << alpha << ", k = " << k
            << ") to phi <= " << eps << " ...\n";

  Rng rng(9);
  ConvergenceOptions options;
  options.epsilon = eps;
  const ConvergenceResult result = run_until_converged(process, rng, options);

  std::cout << (result.converged ? "converged" : "NOT converged") << " after "
            << result.steps << " steps (" << result.steps / graph.node_count()
            << " updates/node)\n";
  std::cout << "consensus value F = " << result.final_value << "\n";
  std::cout << "deviation from E[F]: " << result.final_value - weighted_avg0
            << "  (Theorem 2.2(2): s.d. ~ ||xi||/n = "
            << std::sqrt(initial::l2_squared(xi0)) /
                   static_cast<double>(graph.node_count())
            << ")\n";
  return result.converged ? 0 : 1;
}
